package leqa

import (
	"context"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/pool"
)

// Streaming ingestion types, re-exported from the internal packages.
type (
	// GateStream is a re-windable stream of validated gates — the input of
	// the streaming estimation paths. ingest scanners (see FileSource /
	// ReaderSource) and CircuitSource streams implement it.
	GateStream = analysis.GateStream
	// PrevalidatedStream is the optional GateStream capability advertising
	// that yielded gates are already validated; wrappers that pass gates
	// through unchanged should forward it so the analysis passes keep
	// skipping the redundant per-gate re-validation.
	PrevalidatedStream = analysis.PrevalidatedStream
	// IngestOptions tunes the streaming .qc scanner: chunk size, line cap,
	// and the on-disk spool (directory, byte cap) non-seekable sources use
	// to support the analyzer's second pass.
	IngestOptions = ingest.Options
	// Appender extends an analyzed circuit with an append-only gate suffix
	// and snapshots Analyses without re-analyzing the prefix — the
	// interactive sizing primitive.
	Appender = analysis.Appender
	// NonFTError marks a circuit or gate stream containing gates outside
	// the fault-tolerant set; the streaming paths report it gate by gate,
	// and services use it to decide whether to fall back to materialized
	// decomposition.
	NonFTError = core.NonFTError
)

// NewAppender seeds an incremental Appender from an existing analysis (see
// Analyze / AnalyzeReader).
func NewAppender(a *Analysis) (*Appender, error) { return analysis.NewAppender(a) }

// AnalyzeReader builds a circuit's analysis from a streamed .qc netlist
// without materializing its gate list — the front end of the beyond-memory
// estimation path. The result is estimate-equivalent to Analyze on the
// parsed circuit (bitwise-identical Results).
func AnalyzeReader(r io.Reader, name string, opt IngestOptions) (*Analysis, error) {
	sc := ingest.NewScanner(r, name, opt)
	defer sc.Close()
	return analysis.AnalyzeStream(sc)
}

// EstimateReader runs LEQA on a .qc netlist streamed from r: parsing,
// analysis and estimation all consume the stream directly, so peak memory
// is independent of the gate list size. Results are bitwise identical to
// Estimate on the materialized circuit. The netlist must already be FT —
// decomposition needs the gate list and is a materialized-path feature.
func EstimateReader(r io.Reader, name string, p Params, opt IngestOptions) (*EstimateResult, error) {
	est, err := core.New(p, EstimateOptions{})
	if err != nil {
		return nil, err
	}
	return est.EstimateReader(r, name, opt)
}

// Source lazily opens one circuit's gate stream: nothing is read, spooled
// or analyzed until a sweep worker claims the source. Batch engines accept
// []Source so a fleet of beyond-memory netlists can queue without their
// combined footprint ever existing at once.
type Source struct {
	// Name labels the circuit in results and diagnostics.
	Name string
	// Open produces the gate stream. Streams implementing io.Closer are
	// closed by the engine when the source's work is done. Open may be
	// called once per engine run; FileSource supports any number of runs,
	// ReaderSource exactly one.
	Open func() (GateStream, error)
	// Analysis, when non-nil, short-circuits ingestion entirely: the source
	// is estimated straight from this pre-built (typically store-resident)
	// analysis and Open is never called. The engines treat the analysis as
	// immutable and shared.
	Analysis *Analysis
	// StoreOutcome optionally labels how Analysis was obtained ("hit",
	// "disk") for request-trace attribution; empty reads as "ref". Purely
	// observational — it never changes estimation.
	StoreOutcome string
	// Digest, when non-empty, is the circuit's content digest, already known
	// before any ingestion — a by-reference request resolved from the
	// analysis store, typically. It lets the result memo probe for warm
	// (digest, params) cells before the source is opened or analyzed.
	Digest string
}

// FileSource streams a .qc file, naming the circuit after the file. The
// file is opened lazily (and seeked, never spooled) when a worker claims
// it.
func FileSource(path string, opt IngestOptions) Source {
	return Source{Name: circuit.QCBaseName(path), Open: func() (GateStream, error) {
		return ingest.Open(path, opt)
	}}
}

// ReaderSource streams a netlist from an arbitrary reader (stdin, a
// network body) — textual .qc or binary .qcb, either gzipped, sniffed by
// magic bytes — spooling to disk for the analyzer's second pass when r
// cannot seek. The reader is consumed; the source can be opened once.
func ReaderSource(name string, r io.Reader, opt IngestOptions) Source {
	return Source{Name: name, Open: func() (GateStream, error) {
		return ingest.NewAutoStream(r, name, opt)
	}}
}

// CircuitSource adapts an in-memory circuit so materialized and streamed
// inputs can share one batch run.
func CircuitSource(c *Circuit) Source {
	return Source{Name: c.Name, Open: func() (GateStream, error) {
		return analysis.NewCircuitStream(c), nil
	}}
}

// NewCircuitStream wraps an in-memory circuit as a rewindable GateStream —
// the adapter for feeding materialized circuits to stream consumers such
// as AnalysisStore.GetOrAnalyze or StreamDigest.
func NewCircuitStream(c *Circuit) GateStream { return analysis.NewCircuitStream(c) }

// AnalysisSource adapts a pre-built analysis — typically a content-store
// hit resolved by digest — so by-reference requests can share a batch run
// with streamed netlists while skipping ingestion and analysis entirely.
func AnalysisSource(name string, a *Analysis) Source {
	return Source{Name: name, Analysis: a}
}

// ctxStream threads context cancellation into a flowing gate stream: the
// scan stops with ctx's error at the next gate boundary (checked every
// ctxCheckEvery gates, so the overhead never shows on the hot path).
type ctxStream struct {
	src GateStream
	ctx context.Context
	n   int
	err error
}

const ctxCheckEvery = 4096

func (s *ctxStream) Scan() bool {
	if s.err != nil {
		return false
	}
	if s.n%ctxCheckEvery == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return false
		}
	}
	s.n++
	return s.src.Scan()
}

func (s *ctxStream) Gate() Gate { return s.src.Gate() }

func (s *ctxStream) Err() error {
	if s.err != nil {
		return s.err
	}
	return s.src.Err()
}

func (s *ctxStream) Rewind() error {
	if s.err != nil {
		return s.err
	}
	s.n = 0
	return s.src.Rewind()
}

func (s *ctxStream) NumQubits() int { return s.src.NumQubits() }
func (s *ctxStream) Name() string   { return s.src.Name() }

// PrevalidatedGates forwards the wrapped stream's validation guarantee
// (analysis.PrevalidatedStream): cancellation checks don't alter gates.
func (s *ctxStream) PrevalidatedGates() bool {
	p, ok := s.src.(analysis.PrevalidatedStream)
	return ok && p.PrevalidatedGates()
}

// closeStream releases a stream that owns resources (ingest scanners hold
// spool files); in-memory streams are no-ops.
func closeStream(src GateStream) {
	if c, ok := src.(io.Closer); ok {
		c.Close()
	}
}

// EstimateStream estimates one gate stream through the runner's pooled
// arenas and shared estimator: the fused analysis passes consume the stream
// directly, ctx cancels at gate granularity, and the Result is bitwise
// identical to the materialized path.
func (r *Runner) EstimateStream(ctx context.Context, src GateStream) (*EstimateResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ar := r.arena()
	defer r.release(ar)
	return estimateStreamPhased(ctx, r.est, &ctxStream{src: src, ctx: ctx}, ar)
}

// estimateStreamPhased is EstimateStreamArena with the analyze/estimate
// boundary reported to the phase observer; the split composition is bitwise
// identical to the fused call.
func estimateStreamPhased(ctx context.Context, est *core.Estimator, src GateStream, ar *analysis.Arena) (*EstimateResult, error) {
	t := time.Now()
	a, err := est.AnalyzeStreamFT(src, ar)
	observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
		if a == nil {
			return "streamed"
		}
		return "streamed gates=" + itoa(a.Operations)
	})
	if err != nil {
		return nil, err
	}
	t = time.Now()
	res, err := est.EstimateAnalysisArena(a, ar)
	observePhase(ctx, PhaseEstimate, t)
	return res, err
}

// EstimateStreamWith is EstimateStream under an explicit parameter set —
// the estimation service's overlay path, which shares the runner's arena
// pool (and through the zone-model memo, its cached fabrics) while binding
// per-request physics.
func (r *Runner) EstimateStreamWith(ctx context.Context, src GateStream, p Params) (*EstimateResult, error) {
	est, err := core.New(p, r.opt)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ar := r.arena()
	defer r.release(ar)
	return estimateStreamPhased(ctx, est, &ctxStream{src: src, ctx: ctx}, ar)
}

// estimateSource opens one lazy source and estimates its stream — the
// per-item work of the source sweeps. With an attached analysis store (or
// an Analysis-backed source) the stream feeds the store's digest+analyze
// path and Algorithm 1 runs on the shared analysis; otherwise the gates
// flow straight through the worker's arena.
func (r *Runner) estimateSource(ctx context.Context, s Source) (*EstimateResult, error) {
	if s.Analysis != nil || r.store != nil {
		a, err := r.analyzeSource(ctx, s)
		if err != nil {
			return nil, err
		}
		return r.estimateShared(ctx, r.est, a)
	}
	t := time.Now()
	src, err := s.Open()
	observePhaseDetail(ctx, PhaseIngest, t, func() string { return "open=" + s.Name })
	if err != nil {
		return nil, err
	}
	defer closeStream(src)
	return r.EstimateStream(ctx, src)
}

// RunSources is Run over lazily opened gate streams: each worker opens,
// streams and estimates its source without the gate list ever
// materializing. Results keep input order; per-source failures land in
// SweepResult.Err.
func (r *Runner) RunSources(ctx context.Context, sources []Source) ([]SweepResult, error) {
	results := make([]SweepResult, 0, len(sources))
	err := r.RunSourcesStream(ctx, sources, func(sr SweepResult) error {
		results = append(results, sr)
		return nil
	})
	return results, err
}

// RunSourcesStream is RunSources with per-result delivery in input order.
func (r *Runner) RunSourcesStream(ctx context.Context, sources []Source, emit func(SweepResult) error) error {
	return r.runStream(ctx, len(sources), func(i int) SweepResult {
		sr := SweepResult{Index: i, Name: sources[i].Name}
		sr.Result, sr.Err = r.estimateSource(ctx, sources[i])
		return sr
	}, func(i int) string { return sources[i].Name }, emit)
}

// SweepGridSources estimates the sources × paramSets cross product — the
// streamed counterpart of SweepGrid. With one parameter column each cell
// streams straight through its worker's arena; with several, each source is
// streamed and analyzed exactly once (by whichever worker first needs it)
// and the shared immutable analysis feeds every column, so a beyond-memory
// netlist is read once per run, not once per cell.
func (r *Runner) SweepGridSources(ctx context.Context, sources []Source, paramSets []Params) ([]GridCell, error) {
	cells := make([]GridCell, 0, len(sources)*len(paramSets))
	err := r.SweepGridSourcesStream(ctx, sources, paramSets, func(cell GridCell) error {
		cells = append(cells, cell)
		return nil
	})
	if err != nil && len(cells) == 0 && ctx.Err() == nil {
		return nil, err // parameter-set validation failure: nothing ran
	}
	return cells, err
}

// SweepGridSourcesStream is SweepGridSources with per-row delivery in
// circuit-major input order, mirroring SweepGridStream's contract: each
// worker owns one source's whole row, analyzes it once (store-shared when a
// store is attached) and estimates every parameter column in one batched
// call — consulting the result memo first when the source's digest is
// already known.
func (r *Runner) SweepGridSourcesStream(ctx context.Context, sources []Source, paramSets []Params, emit func(GridCell) error) error {
	ests, err := r.gridEstimators(paramSets)
	if err != nil {
		return err
	}
	cols := newGridColumns(paramSets)
	err = pool.ForEachOrdered(len(sources), r.workers, func(i int) []GridCell {
		s := sources[i]
		row := make([]GridCell, len(paramSets))
		for j := range row {
			row[j] = GridCell{
				CircuitIndex: i,
				ParamsIndex:  j,
				Name:         s.Name,
				Params:       paramSets[j],
			}
		}
		if err := ctx.Err(); err != nil {
			for j := range row {
				row[j].Err = err
			}
			return row
		}
		ar := r.arena()
		defer r.release(ar)
		if len(paramSets) == 1 && s.Analysis == nil && r.store == nil && (r.memo == nil || s.Digest == "") {
			// Single column, no store, no memo probe possible: the stream
			// feeds exactly one cell, so the whole analyze+estimate runs in
			// this worker's arena.
			src, err := s.Open()
			if err != nil {
				row[0].Err = err
				return row
			}
			defer closeStream(src)
			row[0].Result, row[0].Err = estimateStreamPhased(ctx, ests[0], &ctxStream{src: src, ctx: ctx}, ar)
			return row
		}
		r.estimateRow(ctx, row, ests, cols,
			func() (string, bool) { return s.Digest, s.Digest != "" },
			func() (*analysis.Analysis, error) { return r.analyzeSource(ctx, s) },
			ar)
		return row
	}, emitRow(emit))
	if err != nil {
		return err
	}
	return ctx.Err()
}
