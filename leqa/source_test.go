package leqa_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/leqa"
)

// writeQCFiles renders benchmark circuits to .qc files for the file-backed
// streaming paths.
func writeQCFiles(t *testing.T, circuits []*leqa.Circuit) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, len(circuits))
	for i, c := range circuits {
		paths[i] = filepath.Join(dir, c.Name+".qc")
		if err := leqa.Save(paths[i], c); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestSweepGridSourcesMatchesBatch proves the lazy-source grid engine —
// mixing file-backed streams and in-memory circuits — produces cells
// bitwise identical to the materialized SweepGrid across a multi-column
// parameter matrix.
func TestSweepGridSourcesMatchesBatch(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder", "mod16adder")
	paths := writeQCFiles(t, circuits)
	p1 := leqa.DefaultParams()
	p1.Grid = leqa.Grid{Width: 16, Height: 16}
	p2 := leqa.DefaultParams()
	p2.Grid = leqa.Grid{Width: 24, Height: 24}
	paramSets := []leqa.Params{p1, p2}

	runner, err := leqa.NewRunner(p1, leqa.EstimateOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	sources := []leqa.Source{
		leqa.FileSource(paths[0], leqa.IngestOptions{}),
		leqa.CircuitSource(circuits[1]),
		leqa.FileSource(paths[2], leqa.IngestOptions{}),
	}
	got, err := runner.SweepGridSources(context.Background(), sources, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d cells, want %d", len(got), len(want))
	}
	for k := range want {
		w, g := want[k], got[k]
		if g.CircuitIndex != w.CircuitIndex || g.ParamsIndex != w.ParamsIndex || g.Name != w.Name {
			t.Fatalf("cell %d labeled (%d,%d,%q), want (%d,%d,%q)", k,
				g.CircuitIndex, g.ParamsIndex, g.Name, w.CircuitIndex, w.ParamsIndex, w.Name)
		}
		if g.Err != nil || w.Err != nil {
			t.Fatalf("cell %d errs: source %v, batch %v", k, g.Err, w.Err)
		}
		if !reflect.DeepEqual(g.Result, w.Result) {
			t.Errorf("cell %d: source-engine estimate diverges from batch", k)
		}
	}
}

// TestRunSourcesSingleColumn covers the single-column fast path (whole
// stream analyzed and estimated in one worker arena) and per-source error
// isolation: a missing file becomes one error row, not a batch failure.
func TestRunSourcesSingleColumn(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder")
	paths := writeQCFiles(t, circuits)
	runner, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(context.Background(), circuits)
	if err != nil {
		t.Fatal(err)
	}
	sources := []leqa.Source{
		leqa.FileSource(paths[0], leqa.IngestOptions{}),
		leqa.FileSource(filepath.Join(t.TempDir(), "missing.qc"), leqa.IngestOptions{}),
		leqa.FileSource(paths[1], leqa.IngestOptions{}),
	}
	got, err := runner.RunSources(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d results, want 3", len(got))
	}
	if !reflect.DeepEqual(got[0].Result, want[0].Result) || !reflect.DeepEqual(got[2].Result, want[1].Result) {
		t.Error("streamed estimates diverge from batch")
	}
	if got[1].Err == nil || !os.IsNotExist(got[1].Err) {
		t.Errorf("missing file error = %v", got[1].Err)
	}
}

// TestEstimateStreamCancellation checks ctx cancellation surfaces as the
// stream error instead of wedging the scan.
func TestEstimateStreamCancellation(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7")
	runner, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := leqa.CircuitSource(circuits[0]).Open()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.EstimateStream(ctx, src); err == nil {
		t.Fatal("want cancellation error")
	}
}
