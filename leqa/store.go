package leqa

import (
	"context"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/qcbin"
	"repro/internal/store"
	"repro/leqa/trace"
)

// Content-addressed analysis store, re-exported from internal/store. An
// AnalysisStore attached to a Runner (SetAnalysisStore) turns the source
// sweeps into "parse once, estimate forever" paths: every estimate first
// digests the gate stream (SHA-256 of the canonical gate records) and a
// resident analysis — memory LRU or persisted .qca image — skips the fused
// graph build entirely. Store hits are bitwise identical to fresh analyses.
type (
	// AnalysisStore is the two-tier (memory LRU over optional disk
	// directory) content-addressed analysis store.
	AnalysisStore = store.Store
	// AnalysisStoreOptions configures an AnalysisStore: memory entries,
	// disk directory, disk size cap.
	AnalysisStoreOptions = store.Options
	// AnalysisStoreStats is a snapshot of a store's cumulative counters.
	AnalysisStoreStats = store.Stats
)

// ErrAnalysisNotFound reports a by-digest lookup whose analysis is in
// neither store tier — the 404 of by-reference estimation.
var ErrAnalysisNotFound = store.ErrNotFound

// NewAnalysisStore builds a content-addressed analysis store. With a disk
// directory the directory is created and scanned, so restarted processes
// resume serving persisted images.
func NewAnalysisStore(opt AnalysisStoreOptions) (*AnalysisStore, error) {
	return store.New(opt)
}

// SetAnalysisStore attaches a content-addressed analysis store to the
// runner's source paths (RunSources, SweepGridSources and the streams
// beneath them): each source is digested on open, and a store hit skips
// analysis. nil detaches. Set before concurrent runs start; the field is
// read unsynchronized on the estimate path. Attaching a store never changes
// results — a hit returns the same CSR content a fresh analysis builds.
func (r *Runner) SetAnalysisStore(s *AnalysisStore) { r.store = s }

// AnalysisStore reports the attached store (nil when none).
func (r *Runner) AnalysisStore() *AnalysisStore { return r.store }

// CircuitDigest computes a circuit's content digest — the bare-hex SHA-256
// of its canonical gate records — the key the analysis store and the leqad
// circuit endpoints address by. The digest covers gate structure, qubit
// count and name; it is independent of the container the circuit arrived
// in (.qc, .qcb, gzipped or not) and of qubit display names.
func CircuitDigest(c *Circuit) (string, error) { return qcbin.DigestCircuit(c) }

// StreamDigest computes the content digest of a gate stream, rewinding it
// first. The stream is left at end-of-stream; Rewind before reusing it.
func StreamDigest(src GateStream) (string, error) { return qcbin.Digest(src) }

// ParseDigestRef validates a "sha256:<64 hex>" circuit reference and
// returns the bare hex digest — the spelling leqad's by-reference circuit
// specs use.
func ParseDigestRef(ref string) (string, error) { return qcbin.ParseRef(ref) }

// FormatDigestRef renders a bare hex digest as a "sha256:..." reference.
func FormatDigestRef(digest string) string { return qcbin.FormatRef(digest) }

// WriteQCB encodes a circuit into the compact binary netlist container
// (.qcb). The encoding round-trips bitwise: decoding yields a circuit with
// the same register and gate list, and the same content digest.
func WriteQCB(w io.Writer, c *Circuit) error { return qcbin.EncodeCircuit(w, c) }

// analyzeSource produces one source's analysis: directly from an
// Analysis-backed source, through the attached store when one is set (a
// hit skips the graph build; a miss analyzes and persists), or by plain
// streaming analysis. The heap-allocated result is safe to share across
// workers and outlive the call.
func (r *Runner) analyzeSource(ctx context.Context, s Source) (*analysis.Analysis, error) {
	if s.Analysis != nil {
		// By-reference resolution: no ingest or graph build happened, but a
		// zero-duration analyze span keeps the request's store attribution
		// visible — which tier answered when the resolver said, "ref" when
		// the analysis arrived pre-built with no provenance.
		if tr := trace.FromContext(ctx); tr != nil {
			outcome := s.StoreOutcome
			if outcome == "" {
				outcome = "ref"
			}
			tr.Observe(trace.SpanAnalyze, "store="+outcome+" gates="+itoa(s.Analysis.Operations), time.Now(), 0)
		}
		return s.Analysis, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t := time.Now()
	src, err := s.Open()
	observePhaseDetail(ctx, PhaseIngest, t, func() string { return "open=" + s.Name })
	if err != nil {
		return nil, err
	}
	defer closeStream(src)
	cs := &ctxStream{src: src, ctx: ctx}
	t = time.Now()
	var a *analysis.Analysis
	if r.store != nil {
		var outcome store.Outcome
		a, _, outcome, err = r.store.GetOrAnalyzeOutcome(cs)
		observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
			if a == nil {
				return "store=" + outcome.String()
			}
			return "store=" + outcome.String() + " gates=" + itoa(a.Operations)
		})
	} else {
		a, err = analysis.AnalyzeStream(cs)
		observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
			if a == nil {
				return "streamed"
			}
			return "streamed gates=" + itoa(a.Operations)
		})
	}
	return a, err
}

// estimateShared runs Algorithm 1 on a shared (store- or caller-owned)
// analysis through a pooled arena.
func (r *Runner) estimateShared(ctx context.Context, est *core.Estimator, a *analysis.Analysis) (*EstimateResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ar := r.arena()
	defer r.release(ar)
	t := time.Now()
	res, err := est.EstimateAnalysisArena(a, ar)
	observePhase(ctx, PhaseEstimate, t)
	return res, err
}
