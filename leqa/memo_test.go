package leqa

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestGridColumnsDedupe: duplicate parameter columns collapse onto the
// lowest-index representative, and unique columns are their own reps.
func TestGridColumnsDedupe(t *testing.T) {
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.ChannelCapacity = 2
	cols := newGridColumns([]Params{p1, p2, p1.Clone(), p2.Clone(), p1})
	if got, want := cols.rep, []int{0, 1, 0, 1, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("rep = %v, want %v", got, want)
	}
	if got, want := cols.uniq, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("uniq = %v, want %v", got, want)
	}
}

// TestSweepGridDedupesDuplicateColumns: a grid whose parameter list repeats
// a configuration estimates it once — duplicate cells share the
// representative's Result pointer — and every cell still matches the
// all-unique grid bitwise.
func TestSweepGridDedupesDuplicateColumns(t *testing.T) {
	c, err := GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.TMove = 150
	cells, err := SweepGrid(context.Background(), []*Circuit{c}, []Params{p1, p2, p1.Clone(), p2.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	for k, cell := range cells {
		if cell.Err != nil {
			t.Fatalf("cell %d: %v", k, cell.Err)
		}
	}
	if cells[0].Result != cells[2].Result || cells[1].Result != cells[3].Result {
		t.Fatal("duplicate columns must share their representative's Result")
	}
	want, err := Estimate(c, p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells[3].Result, want) {
		t.Fatal("deduped cell differs from the sequential estimate")
	}
}

// TestResultMemoWarmGridBitwiseEqual is the memo correctness anchor: a warm
// re-run of the same grid serves every cell from the memo (hits recorded,
// results bitwise-identical to the cold run).
func TestResultMemoWarmGridBitwiseEqual(t *testing.T) {
	r, err := NewRunner(DefaultParams(), EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.SetResultMemo(NewResultMemo(0))
	circuits := make([]*Circuit, 0, 2)
	for _, name := range []string{"ham7", "4bitadder"} {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, c)
	}
	p2 := DefaultParams()
	p2.QubitSpeed = 0.002
	paramSets := []Params{DefaultParams(), p2}

	cold, err := r.SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	st := r.ResultMemo().Stats()
	if st.Hits != 0 || st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("cold stats = %+v, want 0 hits / 4 misses / 4 entries", st)
	}
	warm, err := r.SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	st = r.ResultMemo().Stats()
	if st.Hits != 4 || st.Misses != 4 {
		t.Fatalf("warm stats = %+v, want 4 hits / 4 misses", st)
	}
	for k := range cold {
		if warm[k].Err != nil {
			t.Fatalf("warm cell %d: %v", k, warm[k].Err)
		}
		if !reflect.DeepEqual(warm[k].Result, cold[k].Result) {
			t.Fatalf("warm cell %d differs from its cold twin", k)
		}
	}
}

// TestResultMemoHitSkipsAnalyze: a warm by-ref cell must never open or
// analyze its source — the memo answers before ingestion. The second run's
// source has a booby-trapped Open and no Analysis, so reaching either path
// fails the test through the cell error.
func TestResultMemoHitSkipsAnalyze(t *testing.T) {
	r, err := NewRunner(DefaultParams(), EstimateOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.SetResultMemo(NewResultMemo(0))
	c, err := GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := CircuitDigest(c)
	if err != nil {
		t.Fatal(err)
	}
	warmSrc := AnalysisSource(c.Name, a)
	warmSrc.Digest = digest
	params := []Params{DefaultParams()}
	cold, err := r.SweepGridSources(context.Background(), []Source{warmSrc}, params)
	if err != nil || cold[0].Err != nil {
		t.Fatalf("cold run: %v / %v", err, cold[0].Err)
	}

	trapped := Source{
		Name:   c.Name,
		Digest: digest,
		Open: func() (GateStream, error) {
			return nil, errors.New("memo hit must not open the source")
		},
	}
	warm, err := r.SweepGridSources(context.Background(), []Source{trapped}, params)
	if err != nil {
		t.Fatal(err)
	}
	if warm[0].Err != nil {
		t.Fatalf("warm cell reached the source: %v", warm[0].Err)
	}
	if !reflect.DeepEqual(warm[0].Result, cold[0].Result) {
		t.Fatal("memo-served cell differs from its cold twin")
	}
	if st := r.ResultMemo().Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want exactly 1 hit", st)
	}
}

// TestResultMemoSingleFlight: concurrent rows with the same (digest,
// params) key coalesce on one computation. Every row of a grid of identical
// circuits must agree bitwise, and the memo must record exactly one miss.
func TestResultMemoSingleFlight(t *testing.T) {
	r, err := NewRunner(DefaultParams(), EstimateOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	r.SetResultMemo(NewResultMemo(0))
	c, err := GenerateFT("ham7")
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*Circuit{c, c, c, c, c, c, c, c}
	cells, err := r.SweepGrid(context.Background(), circuits, []Params{DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	for k, cell := range cells {
		if cell.Err != nil {
			t.Fatalf("cell %d: %v", k, cell.Err)
		}
		if !reflect.DeepEqual(cell.Result, cells[0].Result) {
			t.Fatalf("cell %d diverges from cell 0", k)
		}
	}
	st := r.ResultMemo().Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly 1 miss (single flight)", st)
	}
	if st.Hits != uint64(len(circuits)-1) {
		t.Fatalf("stats = %+v, want %d hits", st, len(circuits)-1)
	}
}

// TestResultMemoEviction: the LRU bound holds and evicted keys recompute.
func TestResultMemoEviction(t *testing.T) {
	m := NewResultMemo(2)
	fill := func(key string) bool {
		e, owned := m.claim(key)
		if owned {
			m.fulfill(e, &EstimateResult{}, nil)
		}
		return owned
	}
	for _, key := range []string{"a", "b", "c"} { // c evicts a
		if !fill(key) {
			t.Fatalf("key %q: expected to own the first claim", key)
		}
	}
	st := m.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
	if !fill("a") {
		t.Fatal("evicted key must miss")
	}
	if fill("c") {
		t.Fatal("resident key must hit")
	}
}

// TestResultMemoErrorsNotCached: a failed computation is unpublished before
// its waiters wake, so the next claim recomputes instead of replaying the
// error, and waiters observe the failure (nil result, non-nil error).
func TestResultMemoErrorsNotCached(t *testing.T) {
	m := NewResultMemo(0)
	e, owned := m.claim("k")
	if !owned {
		t.Fatal("first claim must be owned")
	}
	waiter, ownedTwice := m.claim("k")
	if ownedTwice || waiter != e {
		t.Fatal("second claim while in flight must return the same entry unowned")
	}
	m.fulfill(e, nil, fmt.Errorf("boom"))
	if res, err := waiter.wait(context.Background()); res != nil || err == nil {
		t.Fatalf("waiter got (%v, %v), want (nil, error)", res, err)
	}
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("failed entry still resident: %+v", st)
	}
	if _, owned := m.claim("k"); !owned {
		t.Fatal("claim after a failed flight must recompute")
	}
}

// TestResultMemoWaitCancellation: a waiter blocked on a foreign entry
// unblocks with the context error when its own request is cancelled.
func TestResultMemoWaitCancellation(t *testing.T) {
	m := NewResultMemo(0)
	e, _ := m.claim("k") // never fulfilled
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("wait = %v, want context.Canceled", err)
	}
}

// TestResultMemoDisabledMatches: memo on and memo off produce bitwise
// identical grids — the memo is invisible to results.
func TestResultMemoDisabledMatches(t *testing.T) {
	c, err := GenerateFT("4bitadder")
	if err != nil {
		t.Fatal(err)
	}
	paramSets := gridParamSets()
	plain, err := NewRunner(DefaultParams(), EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	memoized, err := NewRunner(DefaultParams(), EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	memoized.SetResultMemo(NewResultMemo(0))
	want, err := plain.SweepGrid(context.Background(), []*Circuit{c}, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range []string{"cold", "warm"} {
		got, err := memoized.SweepGrid(context.Background(), []*Circuit{c}, paramSets)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k].Err != nil {
				t.Fatalf("%s cell %d: %v", pass, k, got[k].Err)
			}
			if !reflect.DeepEqual(got[k].Result, want[k].Result) {
				t.Fatalf("%s cell %d diverges from the memo-free grid", pass, k)
			}
		}
	}
}
