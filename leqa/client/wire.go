// Package client defines the wire schema of the leqad estimation service
// (cmd/leqad, internal/server) and a small HTTP client for it. The row
// format streamed by the batch endpoints is leqa.ResultRecord — the same
// flat schema the JSON/CSV emitters use for baseline diffing — one compact
// JSON object per NDJSON line (or SSE data frame).
package client

// CircuitSpec selects one circuit for estimation: an inline .qc netlist, a
// generator spec, or a by-reference digest of a previously uploaded
// circuit — exactly one of the three.
type CircuitSpec struct {
	// Name labels the circuit in result rows; defaults to the generator
	// spec or the .qc-declared name.
	Name string `json:"name,omitempty"`
	// QC is an inline .qc netlist (the paper's input format).
	QC string `json:"qc,omitempty"`
	// Generate names a built-in benchmark generator: gf2^<n>mult,
	// hwb<n>ps, ham<n>, <n>bitadder, mod<2^n>adder, shor-<n>[x<rounds>].
	// Generated circuits are lowered to the FT gate set automatically.
	Generate string `json:"generate,omitempty"`
	// Ref addresses a circuit by content digest ("sha256:<64 hex>", as
	// returned by PUT /v1/circuits). The server estimates straight from its
	// stored analysis — no netlist bytes travel, no parsing or graph build
	// runs. An unknown digest is a 404 (single estimate) or an error row
	// (batch).
	Ref string `json:"ref,omitempty"`
}

// ParamSpec overlays the server's base physical parameters (Table 1
// defaults unless leqad was started with overrides), mirroring cmd/leqa's
// flags. Nil pointer fields keep the base value.
type ParamSpec struct {
	// Grid is the fabric geometry as "WxH", e.g. "60x60".
	Grid string `json:"grid,omitempty"`
	// ChannelCapacity is Nc, the routing-channel capacity in qubits.
	ChannelCapacity *int `json:"channelCapacity,omitempty"`
	// QubitSpeed is 𝓋 in ULB sides per µs.
	QubitSpeed *float64 `json:"qubitSpeed,omitempty"`
	// TMove is the per-hop move time in µs.
	TMove *float64 `json:"tMove,omitempty"`
}

// OptionsSpec tunes the estimator per request. Nil pointer fields keep the
// server's configured defaults.
type OptionsSpec struct {
	// Truncation overrides the E[S_q] term limit (0 = paper's 20,
	// negative = exact).
	Truncation *int `json:"truncation,omitempty"`
	// DisableCongestion switches the M/M/1 congestion model off (true) or
	// back on (false) regardless of the server's default.
	DisableCongestion *bool `json:"disableCongestion,omitempty"`
	// Decompose lowers non-FT uploaded netlists to the FT gate set before
	// estimating (default true); set false to reject them instead.
	Decompose *bool `json:"decompose,omitempty"`
}

// EstimateRequest is the POST /v1/estimate JSON body: one circuit spec
// inlined at the top level ({"generate": "shor-32"}), plus optional
// parameter and option overlays.
type EstimateRequest struct {
	CircuitSpec
	Params  *ParamSpec   `json:"params,omitempty"`
	Options *OptionsSpec `json:"options,omitempty"`
}

// SweepRequest is the POST /v1/sweep JSON body: many circuits under one
// parameter set, streamed back as one row per circuit.
type SweepRequest struct {
	Circuits []CircuitSpec `json:"circuits"`
	Params   *ParamSpec    `json:"params,omitempty"`
	Options  *OptionsSpec  `json:"options,omitempty"`
}

// GridRequest is the POST /v1/grid JSON body: circuits × paramSets cross
// product, streamed back as one row per cell in circuit-major input order.
// An empty ParamSets means one column of server defaults.
type GridRequest struct {
	Circuits  []CircuitSpec `json:"circuits"`
	ParamSets []ParamSpec   `json:"paramSets,omitempty"`
	Options   *OptionsSpec  `json:"options,omitempty"`
}

// BenchmarkInfo is one GET /v1/benchmarks catalog entry, with the paper's
// Table 2/3 reference workload sizes.
type BenchmarkInfo struct {
	Name       string `json:"name"`
	Qubits     int    `json:"qubits"`
	Operations int    `json:"operations"`
}

// BenchmarksResponse is the GET /v1/benchmarks reply.
type BenchmarksResponse struct {
	// Benchmarks lists the paper's 18 Table 3 circuits.
	Benchmarks []BenchmarkInfo `json:"benchmarks"`
	// Families lists the recognized generator spec shapes.
	Families []string `json:"families"`
}

// CircuitInfo is the PUT/GET /v1/circuits reply: the content digest a
// stored circuit is addressed by, plus the analysis metadata.
type CircuitInfo struct {
	// Digest is the "sha256:<64 hex>" reference usable as CircuitSpec.Ref.
	Digest string `json:"digest"`
	// Name is the stored circuit's label.
	Name string `json:"name"`
	// Qubits and Operations are the register size and gate count.
	Qubits     int `json:"qubits"`
	Operations int `json:"operations"`
	// FT reports whether every gate belongs to the fault-tolerant set;
	// non-FT circuits can be stored but not estimated by reference.
	FT bool `json:"ft"`
}

// StoreStats mirrors leqa.AnalysisStoreStats on the wire: the two-tier
// content-addressed analysis store's cumulative counters.
type StoreStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	DiskHits      uint64 `json:"diskHits"`
	Puts          uint64 `json:"puts"`
	Evictions     uint64 `json:"evictions"`
	DiskEvictions uint64 `json:"diskEvictions"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	DiskEntries   int    `json:"diskEntries"`
	DiskBytes     int64  `json:"diskBytes"`
}

// CacheStats mirrors leqa.ZoneCacheStats on the wire.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// MemoStats mirrors leqa.ResultMemoStats on the wire: the (digest, params)
// result memo's cumulative counters. All zero when the memo is disabled.
type MemoStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// LatencyStats summarizes per-request estimate latency: every estimation
// request (estimate/sweep/grid) that began a successful reply, timed from
// slot acquisition to the last byte. Requests rejected up front (4xx/5xx —
// malformed bodies, bad parameters, over-cap batches) are not counted.
type LatencyStats struct {
	// Count is the number of timed requests.
	Count uint64 `json:"count"`
	// SumMs and MaxMs aggregate request durations in milliseconds;
	// AvgMs = SumMs / Count.
	SumMs float64 `json:"sumMs"`
	MaxMs float64 `json:"maxMs"`
	AvgMs float64 `json:"avgMs"`
	// Buckets is a coarse non-cumulative histogram: Buckets[i] counts
	// requests with BucketBoundsMs[i-1] ≤ duration < BucketBoundsMs[i]
	// (Buckets[0] has no lower bound); the final bucket is unbounded
	// above. The bucket counts sum to Count for a quiescent server; a
	// snapshot taken while requests are completing may momentarily be off
	// by the in-flight updates (counters are lock-free, not a consistent
	// cut).
	BucketBoundsMs []float64 `json:"bucketBoundsMs"`
	Buckets        []uint64  `json:"buckets"`
}

// WindowQuantiles summarizes one sliding-window latency sketch: sample
// count plus interpolated percentiles in milliseconds (0 when the window is
// empty — check Count).
type WindowQuantiles struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	P999Ms float64 `json:"p999Ms"`
}

// WindowEndpointStats is one endpoint's sliding-window view: completions,
// errors (5xx plus 429) and the latency quantiles of successful replies.
type WindowEndpointStats struct {
	Requests uint64          `json:"requests"`
	Errors   uint64          `json:"errors"`
	Latency  WindowQuantiles `json:"latency"`
}

// SaturationStats is the /healthz saturation block: how full the admission
// path is right now and over the sliding window.
type SaturationStats struct {
	// InFlight and QueueDepth are live gauges of admitted and queued
	// estimation requests; MaxConcurrent and MaxQueue are their configured
	// ceilings (MaxQueue 0 = reject immediately when full).
	InFlight      int64 `json:"inFlight"`
	QueueDepth    int64 `json:"queueDepth"`
	MaxConcurrent int   `json:"maxConcurrent"`
	MaxQueue      int   `json:"maxQueue"`
	// WindowSec is the sliding-window span every windowed figure covers.
	WindowSec float64 `json:"windowSec"`
	// QueueWait is the windowed slot-wait distribution (0 samples are
	// immediate admissions); its p50 prices 429 Retry-After hints.
	QueueWait WindowQuantiles `json:"queueWait"`
	// Throttled counts rejections by reason since startup: concurrency,
	// queue_timeout, body_cap, gate_cap.
	Throttled map[string]uint64 `json:"throttled"`
	// Endpoints holds the windowed per-endpoint series (estimate, sweep,
	// grid).
	Endpoints map[string]WindowEndpointStats `json:"endpoints"`
}

// SLOClauseStatus is one objective's state in the /healthz slo block.
type SLOClauseStatus struct {
	// Clause is the canonical clause string, e.g. "estimate:p99<250ms" —
	// also the clause label on the /metrics slo series.
	Clause string `json:"clause"`
	// Current and Limit are in seconds for latency clauses and a 0..1
	// ratio for error_rate. Current is 0 with HasData false when the
	// window held no traffic at the last evaluation (vacuously compliant).
	Current float64 `json:"current"`
	Limit   float64 `json:"limit"`
	HasData bool    `json:"hasData"`
	// Compliant is the last evaluation's verdict; ComplianceRatio the
	// fraction of recent evaluations compliant.
	Compliant       bool    `json:"compliant"`
	ComplianceRatio float64 `json:"complianceRatio"`
	// Breaches counts violating evaluations since startup (monotone);
	// Consecutive is the current breach run — the server degrades when it
	// reaches the configured threshold.
	Breaches    uint64 `json:"breaches"`
	Consecutive int    `json:"consecutive"`
}

// SLOStatus is the /healthz slo block, present only when the server was
// started with objectives.
type SLOStatus struct {
	// Degraded mirrors the top-level "degraded" status: some clause has
	// breached for the configured consecutive evaluations.
	Degraded    bool              `json:"degraded"`
	Ticks       uint64            `json:"ticks"`
	IntervalSec float64           `json:"intervalSec"`
	Clauses     []SLOClauseStatus `json:"clauses"`
}

// Health is the GET /healthz reply: build info plus the shared zone-model
// memo counters and the server's request/stream totals. Status is "ok", or
// "degraded" while a configured SLO clause is in sustained breach — still
// HTTP 200 (the process serves; objective state lives in the payload).
type Health struct {
	Status          string           `json:"status"`
	Version         string           `json:"version"`
	GoVersion       string           `json:"goVersion"`
	UptimeSec       float64          `json:"uptimeSec"`
	Workers         int              `json:"workers"`
	Requests        uint64           `json:"requests"`
	RowsStreamed    uint64           `json:"rowsStreamed"`
	BatchesCanceled uint64           `json:"batchesCanceled"`
	EstimateLatency LatencyStats     `json:"estimateLatency"`
	ZoneModelCache  CacheStats       `json:"zoneModelCache"`
	AnalysisStore   StoreStats       `json:"analysisStore"`
	ResultMemo      MemoStats        `json:"resultMemo"`
	Saturation      *SaturationStats `json:"saturation,omitempty"`
	SLO             *SLOStatus       `json:"slo,omitempty"`
}

// APIError is the JSON error envelope every non-2xx reply carries.
type APIError struct {
	StatusCode int    `json:"-"`
	Message    string `json:"error"`
	// RequestID is the server's correlation ID for the failed request
	// (from the X-Request-Id response header) — quote it when reporting a
	// failure so the operator can find the matching access-log line and
	// /debug/requests trace.
	RequestID string `json:"-"`
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return e.Message + " (request " + e.RequestID + ")"
	}
	return e.Message
}
