package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/leqa"
)

// Client talks to a leqad estimation service. The zero http.Client is fine
// for most uses; streaming endpoints deliver rows as the server flushes
// them, so no response timeout should be set on long batches (cancel via
// the request context instead).
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8347"). A nil httpClient selects http.DefaultClient.
func New(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: httpClient}
}

// Estimate runs one circuit through POST /v1/estimate and returns its
// result record.
func (c *Client) Estimate(ctx context.Context, req EstimateRequest) (*leqa.ResultRecord, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	var rec leqa.ResultRecord
	if err := c.doJSON(hreq, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// EstimateQC uploads a raw .qc netlist body to POST /v1/estimate. name and
// params travel in the query string; either may be zero.
func (c *Client) EstimateQC(ctx context.Context, name string, qc io.Reader, params *ParamSpec) (*leqa.ResultRecord, error) {
	q := url.Values{}
	if name != "" {
		q.Set("name", name)
	}
	if params != nil {
		if params.Grid != "" {
			q.Set("grid", params.Grid)
		}
		if params.ChannelCapacity != nil {
			q.Set("nc", fmt.Sprint(*params.ChannelCapacity))
		}
		if params.QubitSpeed != nil {
			q.Set("v", fmt.Sprint(*params.QubitSpeed))
		}
		if params.TMove != nil {
			q.Set("tmove", fmt.Sprint(*params.TMove))
		}
	}
	u := c.base + "/v1/estimate"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, u, qc)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "text/plain")
	var rec leqa.ResultRecord
	if err := c.doJSON(hreq, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// Sweep streams POST /v1/sweep: row is called once per circuit, in input
// order, as results arrive over the wire. A non-nil row error abandons the
// stream and is returned.
func (c *Client) Sweep(ctx context.Context, req SweepRequest, row func(leqa.ResultRecord) error) error {
	return c.stream(ctx, "/v1/sweep", req, row)
}

// Grid streams POST /v1/grid: row is called once per (circuit, parameter
// set) cell in circuit-major input order as results arrive.
func (c *Client) Grid(ctx context.Context, req GridRequest, row func(leqa.ResultRecord) error) error {
	return c.stream(ctx, "/v1/grid", req, row)
}

// PutCircuit uploads a netlist body — .qc text or binary .qcb, either
// gzipped; the server sniffs the container by magic bytes — to
// PUT /v1/circuits and returns the stored circuit's content digest and
// analysis metadata. Idempotent: re-uploading the same circuit (in any
// container) lands on the same digest. The digest's "sha256:..." form is
// usable as CircuitSpec.Ref in estimate/sweep/grid requests.
func (c *Client) PutCircuit(ctx context.Context, name string, netlist io.Reader) (*CircuitInfo, error) {
	u := c.base + "/v1/circuits"
	if name != "" {
		u += "?name=" + url.QueryEscape(name)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPut, u, netlist)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	var out CircuitInfo
	if err := c.doJSON(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Circuit fetches a stored circuit's metadata by "sha256:..." reference
// (GET /v1/circuits/{digest}). Unknown digests surface as an *APIError
// with StatusCode 404.
func (c *Client) Circuit(ctx context.Context, ref string) (*CircuitInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/circuits/"+url.PathEscape(ref), nil)
	if err != nil {
		return nil, err
	}
	var out CircuitInfo
	if err := c.doJSON(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Benchmarks fetches the GET /v1/benchmarks generator catalog.
func (c *Client) Benchmarks(ctx context.Context) (*BenchmarksResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/benchmarks", nil)
	if err != nil {
		return nil, err
	}
	var out BenchmarksResponse
	if err := c.doJSON(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	var out Health
	if err := c.doJSON(hreq, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// stream POSTs the request and decodes the NDJSON row stream.
func (c *Client) stream(ctx context.Context, path string, req any, row func(leqa.ResultRecord) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", "application/x-ndjson")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec leqa.ResultRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("client: bad row %q: %w", line, err)
		}
		if err := row(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// doJSON executes the request and decodes a single JSON reply into out.
// Result records pick up the server's request ID (X-Request-Id) so a
// surprising estimate can be traced back through the server's access log
// and /debug/requests ring.
func (c *Client) doJSON(hreq *http.Request, out any) error {
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return err
	}
	if rec, ok := out.(*leqa.ResultRecord); ok && rec.TraceID == "" {
		rec.TraceID = resp.Header.Get("X-Request-Id")
	}
	return nil
}

// decodeAPIError turns a non-2xx reply into an *APIError, falling back to
// the raw body when it is not the JSON error envelope. The server's request
// ID rides along for log correlation.
func decodeAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	apiErr := &APIError{StatusCode: resp.StatusCode, RequestID: resp.Header.Get("X-Request-Id")}
	if err := json.Unmarshal(raw, apiErr); err != nil || apiErr.Message == "" {
		apiErr.Message = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return apiErr
}
