package leqa

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/core"
)

// SweepResult is one circuit's outcome inside a batch run. Results keep the
// input order: result i always describes circuit i, whichever worker ran it.
type SweepResult struct {
	// Index is the circuit's position in the input slice.
	Index int
	// Name echoes the circuit (or benchmark) name.
	Name string
	// Result is the estimate; nil when Err is set.
	Result *EstimateResult
	// Err is the per-circuit failure (non-FT gates, bad generator name,
	// cancellation), leaving the other circuits' results intact.
	Err error
}

// Runner is the concurrent batch-estimation engine: a fixed worker pool
// that analyzes each circuit (fused QODG+IIG build) and runs LEQA on the
// result, sharing the estimator (and through it the memoized zone model)
// across workers. Safe for concurrent use; construct once and reuse across
// sweeps.
//
// Workers draw their per-estimate scratch state (graph-build buffers,
// weight vector, longest-path arrays) from a pool of analysis.Arenas, so a
// warm Runner — the leqad replica serving steady traffic — performs
// near-zero heap allocation per estimate. Results never alias arena memory.
type Runner struct {
	est     *core.Estimator
	opt     EstimateOptions
	workers int
	arenas  sync.Pool    // of *analysis.Arena
	active  atomic.Int32 // arenas currently checked out ≈ cells in flight
	store   *AnalysisStore
	memo    *ResultMemo // optional (digest, params) result memo; see memo.go
	memoOpt string      // options prefix baked into every memo key
}

// arena checks a warm arena out of the pool (or makes a fresh one). The
// arena's longest-path scratch is capped to an even share of the cores
// among the estimates currently in flight, so pool-workers × sweep-helpers
// stay near GOMAXPROCS in aggregate: a saturated pool runs each cell's
// critical-path sweep serially (the cells themselves are the parallelism),
// while a lone large request — the interactive leqad case — fans its sweep
// across every core. The share is a checkout-time snapshot, so a burst of
// simultaneous checkouts can transiently overshoot while the first wave's
// earlier, larger shares drain; it cannot deadlock or change results —
// MaxWorkers is purely a performance cap.
func (r *Runner) arena() *analysis.Arena {
	ar, ok := r.arenas.Get().(*analysis.Arena)
	if !ok {
		ar = analysis.NewArena()
	}
	sweepWorkers := runtime.GOMAXPROCS(0) / int(r.active.Add(1))
	if sweepWorkers < 1 {
		sweepWorkers = 1
	}
	ar.Path().MaxWorkers = sweepWorkers
	// The analysis build's shard gang divides the machine the same way the
	// sweep gang does — one even share per in-flight estimate.
	ar.MaxShards = sweepWorkers
	return ar
}

// release returns an arena to the pool once every borrow of its current
// contents has ended.
func (r *Runner) release(ar *analysis.Arena) {
	r.active.Add(-1)
	r.arenas.Put(ar)
}

// NewRunner validates the parameters and builds a Runner. workers ≤ 0
// selects GOMAXPROCS.
func NewRunner(p Params, opt EstimateOptions, workers int) (*Runner, error) {
	est, err := core.New(p, opt)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{est: est, opt: opt, workers: workers}, nil
}

// Workers reports the pool size.
func (r *Runner) Workers() int { return r.workers }

// Run estimates every circuit, fanning the per-circuit work (graph builds +
// Algorithm 1) across the pool. The returned slice has one entry per input
// circuit in input order. The error is non-nil only when ctx was cancelled;
// per-circuit failures land in SweepResult.Err so one bad netlist cannot
// sink a fleet of good ones.
func (r *Runner) Run(ctx context.Context, circuits []*Circuit) ([]SweepResult, error) {
	return r.run(ctx, len(circuits), func(i int) SweepResult {
		c := circuits[i]
		sr := SweepResult{Index: i, Name: c.Name}
		sr.Result, sr.Err = r.estimateOne(ctx, c)
		return sr
	}, func(i int) string { return circuits[i].Name })
}

// RunNamed is Run for generator specs (gf2^16mult, hwb50ps, ...): each
// worker generates the named benchmark, lowers it to the FT gate set and
// estimates it, so even circuit synthesis is parallelized.
func (r *Runner) RunNamed(ctx context.Context, names []string) ([]SweepResult, error) {
	return r.run(ctx, len(names), func(i int) SweepResult {
		return r.generateAndEstimate(ctx, i, names[i])
	}, func(i int) string { return names[i] })
}

// generateAndEstimate synthesizes one named benchmark, lowers it to the FT
// gate set and estimates it — the per-item work RunNamed and
// RunNamedStream share.
func (r *Runner) generateAndEstimate(ctx context.Context, i int, name string) SweepResult {
	sr := SweepResult{Index: i, Name: name}
	t := time.Now()
	c, err := benchgen.GenerateFT(name)
	observePhaseDetail(ctx, PhaseIngest, t, func() string { return "generate=" + name })
	if err != nil {
		sr.Err = fmt.Errorf("leqa: generating %q: %w", name, err)
		return sr
	}
	sr.Result, sr.Err = r.estimateOne(ctx, c)
	return sr
}

// ftError is the package's one copy of the FT-gate-set precondition every
// estimation path checks before analyzing a circuit.
func ftError(c *Circuit) error {
	if c.IsFT() {
		return nil
	}
	return fmt.Errorf("leqa: circuit %q contains non-FT gates; run Decompose first", c.Name)
}

// estimateOne analyzes the circuit (one fused graph pass) and runs the
// estimator on the result, with both phases working out of a pooled arena.
func (r *Runner) estimateOne(ctx context.Context, c *Circuit) (*EstimateResult, error) {
	if err := ftError(c); err != nil {
		return nil, err
	}
	ar := r.arena()
	defer r.release(ar)
	t := time.Now()
	a, err := ar.Analyze(c)
	observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
		return analyzeDetail("", c.NumGates(), analysis.ShardPlan(c.NumGates(), ar))
	})
	if err != nil {
		return nil, err
	}
	t = time.Now()
	res, err := r.est.EstimateAnalysisArena(a, ar)
	observePhase(ctx, PhaseEstimate, t)
	return res, err
}

// run fans the per-item work across the shared pool primitive and collects
// the ordered stream. Every slot is dispatched even after cancellation —
// workers fast-path cancelled items into an error result — so the output
// always accounts for every input, and collected results are bitwise
// identical to what RunStream/RunNamedStream deliver.
func (r *Runner) run(ctx context.Context, n int, work func(i int) SweepResult, name func(i int) string) ([]SweepResult, error) {
	results := make([]SweepResult, 0, n)
	err := r.runStream(ctx, n, work, name, func(sr SweepResult) error {
		results = append(results, sr)
		return nil
	})
	return results, err
}

// Sweep estimates every circuit concurrently with default options and a
// GOMAXPROCS-sized pool — the batch counterpart of Estimate.
func Sweep(ctx context.Context, circuits []*Circuit, p Params) ([]SweepResult, error) {
	r, err := NewRunner(p, EstimateOptions{}, 0)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, circuits)
}

// SweepNamed estimates every named built-in benchmark concurrently with
// default options — generation, FT lowering, graph builds and estimation
// all run inside the pool.
func SweepNamed(ctx context.Context, names []string, p Params) ([]SweepResult, error) {
	r, err := NewRunner(p, EstimateOptions{}, 0)
	if err != nil {
		return nil, err
	}
	return r.RunNamed(ctx, names)
}
