package leqa

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/qodg"
)

// Environment variables read by ApplyEnvTuning. Both cmd/leqa and cmd/leqad
// apply them at startup (flags of the same name override), so deployments
// can tune the parallel dispatch without rebuilding:
//
//   - LEQA_PARALLEL_THRESHOLD — node count at or above which the
//     critical-path sweep runs its level-partitioned parallel relaxation
//     (qodg.ParallelThreshold). Raise it on machines where the gang's
//     per-level synchronization loses to the serial scan; it has no effect
//     on results.
//   - LEQA_SHARD_THRESHOLD — gate count at or above which the fused
//     analysis build shards across cores (analysis.ShardThreshold). Zero or
//     negative disables sharding entirely; results are bitwise identical at
//     every setting.
const (
	EnvParallelThreshold = "LEQA_PARALLEL_THRESHOLD"
	EnvShardThreshold    = "LEQA_SHARD_THRESHOLD"
)

// Environment variables read by StoreOptionsFromEnv. They configure the
// content-addressed analysis store cmd/leqa and cmd/leqad attach (flags of
// the same meaning override):
//
//   - LEQA_STORE_DIR — disk-tier directory for persisted .qca analysis
//     images; empty keeps the store memory-only.
//   - LEQA_STORE_MEM — memory-tier LRU entry cap (0 selects the default).
//   - LEQA_STORE_DISK_BYTES — disk-tier size cap in bytes (0 = unbounded).
const (
	EnvStoreDir       = "LEQA_STORE_DIR"
	EnvStoreMem       = "LEQA_STORE_MEM"
	EnvStoreDiskBytes = "LEQA_STORE_DISK_BYTES"
)

// EnvResultMemoEntries configures the (digest, params) result memo's LRU
// entry cap for cmd/leqad (the -result-memo flag overrides): unset or 0
// selects DefaultResultMemoEntries, a negative value disables the memo
// entirely. The memo only ever serves exact-key hits, so every setting is
// result-preserving.
const EnvResultMemoEntries = "LEQA_RESULT_MEMO_ENTRIES"

// ResultMemoEntriesFromEnv reads LEQA_RESULT_MEMO_ENTRIES: 0 when unset
// (select the default), positive for an explicit LRU cap, negative to
// disable the result memo.
func ResultMemoEntriesFromEnv() (int, error) {
	n := 0
	err := applyEnvInt(EnvResultMemoEntries, func(v int) { n = v })
	return n, err
}

// StoreOptionsFromEnv overlays the LEQA_STORE_* variables onto opt,
// leaving unset ones alone — the env half of the store configuration; the
// commands apply their flags on top.
func StoreOptionsFromEnv(opt AnalysisStoreOptions) (AnalysisStoreOptions, error) {
	if v := os.Getenv(EnvStoreDir); v != "" {
		opt.Dir = v
	}
	if err := applyEnvInt(EnvStoreMem, func(n int) { opt.MemEntries = n }); err != nil {
		return opt, err
	}
	err := applyEnvInt64(EnvStoreDiskBytes, func(n int64) { opt.MaxDiskBytes = n })
	return opt, err
}

// ParallelThreshold reports the critical-path sweep's parallel dispatch
// threshold (nodes).
func ParallelThreshold() int { return qodg.ParallelThreshold }

// SetParallelThreshold sets the critical-path sweep's parallel dispatch
// threshold. Call at program start, before concurrent estimates run — the
// variable is read unsynchronized on every sweep. Purely a performance
// knob: the parallel sweep is bitwise identical to the serial one.
func SetParallelThreshold(nodes int) { qodg.ParallelThreshold = nodes }

// ShardThreshold reports the analysis build's shard dispatch threshold
// (gates).
func ShardThreshold() int { return analysis.ShardThreshold }

// SetShardThreshold sets the analysis build's shard dispatch threshold;
// zero or negative disables sharding. Same contract as
// SetParallelThreshold: set at startup, never affects results.
func SetShardThreshold(gates int) { analysis.ShardThreshold = gates }

// ApplyEnvTuning applies the LEQA_* tuning variables present in the
// environment, leaving unset ones at their defaults. Call once at program
// start, before flags that override them and before any estimates run.
func ApplyEnvTuning() error {
	if err := applyEnvInt(EnvParallelThreshold, SetParallelThreshold); err != nil {
		return err
	}
	return applyEnvInt(EnvShardThreshold, SetShardThreshold)
}

func applyEnvInt(name string, set func(int)) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return fmt.Errorf("%s=%q: not an integer", name, v)
	}
	set(n)
	return nil
}

func applyEnvInt64(name string, set func(int64)) error {
	v := os.Getenv(name)
	if v == "" {
		return nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return fmt.Errorf("%s=%q: not an integer", name, v)
	}
	set(n)
	return nil
}
