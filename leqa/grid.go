package leqa

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
)

// GridCell is one (circuit, parameter-set) estimate inside a cross-product
// sweep. Cells keep input order: the cell for circuit i under parameter set
// j is always at index i·len(paramSets)+j, whichever worker ran it.
type GridCell struct {
	// CircuitIndex and ParamsIndex locate the cell in the cross product.
	CircuitIndex int
	ParamsIndex  int
	// Name echoes the circuit name.
	Name string
	// Params echoes the parameter set the cell was estimated under.
	Params Params
	// Result is the estimate; nil when Err is set.
	Result *EstimateResult
	// Err is the per-cell failure (non-FT circuit, analysis failure,
	// cancellation), leaving the rest of the grid intact.
	Err error
}

// gridEstimators validates every parameter set against the runner's options
// and binds one estimator per set.
func (r *Runner) gridEstimators(paramSets []Params) ([]*core.Estimator, error) {
	ests := make([]*core.Estimator, len(paramSets))
	for j, p := range paramSets {
		est, err := core.New(p, r.opt)
		if err != nil {
			return nil, fmt.Errorf("leqa: parameter set %d: %w", j, err)
		}
		ests[j] = est
	}
	return ests, nil
}

// gridColumns canonicalizes one grid request's parameter columns: keys[j]
// is column j's exact fabric.ParamsKey, rep[j] is the lowest column with an
// identical key (rep[j] == j for representatives), and uniq lists the
// representatives in ascending column order. Duplicate columns — common in
// scripted design-space sweeps that perturb one field through a list with
// repeats — are estimated once and share the representative's Result
// pointer (Results are immutable by convention).
type gridColumns struct {
	keys []fabric.ParamsKey
	rep  []int
	uniq []int
}

func newGridColumns(paramSets []Params) *gridColumns {
	cols := &gridColumns{
		keys: make([]fabric.ParamsKey, len(paramSets)),
		rep:  make([]int, len(paramSets)),
	}
	first := make(map[fabric.ParamsKey]int, len(paramSets))
	for j, p := range paramSets {
		k := p.Key()
		cols.keys[j] = k
		if r, ok := first[k]; ok {
			cols.rep[j] = r
			continue
		}
		first[k] = j
		cols.rep[j] = j
		cols.uniq = append(cols.uniq, j)
	}
	return cols
}

// SweepGrid estimates the full circuits × paramSets cross product. Each
// circuit is analyzed exactly once — the fused QODG+IIG build is
// fabric-independent — and the resulting Analysis is shared by every
// parameter set; the estimate phase then runs as one batched row per
// circuit (core.EstimateAnalysisBatch), building every column's weight
// vector in a single node scan and relaxing all columns' critical paths in
// one multi-weight traversal. Duplicate parameter columns are deduplicated
// by canonical fabric.ParamsKey and estimated once; the zonemodel LRU
// further collapses the scalar phase across cells sharing a fabric
// configuration. Cells come back in input order (circuit-major). The error
// is non-nil when ctx was cancelled or a parameter set fails validation;
// per-circuit and per-cell failures land in GridCell.Err.
//
// SweepGrid collects SweepGridStream, so the two are cell-for-cell
// bitwise identical by construction.
func (r *Runner) SweepGrid(ctx context.Context, circuits []*Circuit, paramSets []Params) ([]GridCell, error) {
	cells := make([]GridCell, 0, len(circuits)*len(paramSets))
	err := r.SweepGridStream(ctx, circuits, paramSets, func(cell GridCell) error {
		cells = append(cells, cell)
		return nil
	})
	if err != nil && len(cells) == 0 && ctx.Err() == nil {
		return nil, err // parameter-set validation failure: nothing ran
	}
	return cells, err
}

// SweepGrid estimates the circuits × paramSets cross product with default
// options and a GOMAXPROCS-sized pool — the batch counterpart of calling
// Estimate once per pair, with each circuit analyzed exactly once.
func SweepGrid(ctx context.Context, circuits []*Circuit, paramSets []Params) ([]GridCell, error) {
	r, err := NewRunner(DefaultParams(), EstimateOptions{}, 0)
	if err != nil {
		return nil, err
	}
	return r.SweepGrid(ctx, circuits, paramSets)
}

// GridCells adapts single-parameter sweep results into grid cells (one
// parameter column), so the JSON/CSV emitters cover both sweep shapes.
func GridCells(results []SweepResult, p Params) []GridCell {
	cells := make([]GridCell, len(results))
	for i, sr := range results {
		cells[i] = GridCell{
			CircuitIndex: sr.Index,
			Name:         sr.Name,
			Params:       p,
			Result:       sr.Result,
			Err:          sr.Err,
		}
	}
	return cells
}
