package leqa

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/circuit"
)

// gridParamSets builds the ≥3-parameter-set matrix the acceptance criteria
// name: the default fabric, a larger fabric, and a narrow-channel/faster
// variant.
func gridParamSets() []Params {
	p1 := DefaultParams()
	p2 := DefaultParams()
	p2.Grid = Grid{Width: 90, Height: 90}
	p3 := DefaultParams()
	p3.ChannelCapacity = 2
	p3.QubitSpeed = 0.002
	return []Params{p1, p2, p3}
}

// TestSweepGridMatchesSequential is the grid-engine correctness anchor:
// over the built-in benchmarks × three parameter sets, every cell must be
// bitwise-identical to a sequential Estimate call for that (circuit,
// Params) pair.
func TestSweepGridMatchesSequential(t *testing.T) {
	names := sweepSuite(t)
	paramSets := gridParamSets()

	circuits := make([]*Circuit, len(names))
	for i, name := range names {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		circuits[i] = c
	}

	cells, err := SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(circuits)*len(paramSets) {
		t.Fatalf("got %d cells, want %d", len(cells), len(circuits)*len(paramSets))
	}
	for k, cell := range cells {
		i, j := k/len(paramSets), k%len(paramSets)
		if cell.CircuitIndex != i || cell.ParamsIndex != j || cell.Name != names[i] {
			t.Fatalf("cell %d is (%d,%d,%q), want (%d,%d,%q)",
				k, cell.CircuitIndex, cell.ParamsIndex, cell.Name, i, j, names[i])
		}
		if cell.Err != nil {
			t.Fatalf("%s under params %d: %v", cell.Name, j, cell.Err)
		}
		seq, err := Estimate(circuits[i], paramSets[j])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cell.Result, seq) {
			t.Errorf("%s under params %d: grid cell differs from sequential estimate (%.17g vs %.17g µs)",
				cell.Name, j, cell.Result.EstimatedLatency, seq.EstimatedLatency)
		}
	}
}

func TestSweepGridPerCellErrors(t *testing.T) {
	good, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	bad := circuit.New("raw-toffoli", 3)
	bad.Append(circuit.NewToffoli(0, 1, 2))

	paramSets := gridParamSets()
	cells, err := SweepGrid(context.Background(), []*Circuit{good, bad}, paramSets)
	if err != nil {
		t.Fatal(err)
	}
	for k, cell := range cells {
		wantErr := cell.CircuitIndex == 1
		if (cell.Err != nil) != wantErr {
			t.Errorf("cell %d (circuit %d): err = %v, want error: %v", k, cell.CircuitIndex, cell.Err, wantErr)
		}
		if wantErr && cell.Result != nil {
			t.Errorf("cell %d carries a result despite the analysis error", k)
		}
	}
}

func TestSweepGridRejectsBadParams(t *testing.T) {
	good, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.TMove = 0
	if _, err := SweepGrid(context.Background(), []*Circuit{good}, []Params{DefaultParams(), bad}); err == nil {
		t.Error("want validation error for the broken parameter set")
	}
}

func TestSweepGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	cells, err := SweepGrid(ctx, []*Circuit{c, c}, gridParamSets())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6 (every slot must be accounted for)", len(cells))
	}
	for k, cell := range cells {
		if !errors.Is(cell.Err, context.Canceled) {
			t.Errorf("cell %d: err = %v, want context.Canceled", k, cell.Err)
		}
		if cell.Result != nil {
			t.Errorf("cell %d carries a result despite pre-cancelled context", k)
		}
	}
}

func TestSweepGridEmptyInputs(t *testing.T) {
	cells, err := SweepGrid(context.Background(), nil, gridParamSets())
	if err != nil || len(cells) != 0 {
		t.Errorf("empty circuits: cells=%d err=%v", len(cells), err)
	}
	c, genErr := GenerateFT("8bitadder")
	if genErr != nil {
		t.Fatal(genErr)
	}
	cells, err = SweepGrid(context.Background(), []*Circuit{c}, nil)
	if err != nil || len(cells) != 0 {
		t.Errorf("empty params: cells=%d err=%v", len(cells), err)
	}
}

func TestGridCellsAdapter(t *testing.T) {
	c, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	results, err := Sweep(context.Background(), []*Circuit{c}, p)
	if err != nil {
		t.Fatal(err)
	}
	cells := GridCells(results, p)
	if len(cells) != 1 || cells[0].Name != c.Name || cells[0].Result != results[0].Result {
		t.Fatalf("adapter mismatch: %+v", cells)
	}
	if cells[0].Params.Grid != p.Grid {
		t.Errorf("params not propagated")
	}
}

func TestWriteResultsEmitters(t *testing.T) {
	c, err := GenerateFT("8bitadder")
	if err != nil {
		t.Fatal(err)
	}
	bad := circuit.New("raw-toffoli", 3)
	bad.Append(circuit.NewToffoli(0, 1, 2))
	cells, err := SweepGrid(context.Background(), []*Circuit{c, bad}, []Params{DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}

	var jb strings.Builder
	if err := WriteResultsJSON(&jb, cells); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"circuit": "8bitadder"`, `"estimatedLatencyUs"`, `"error"`, `"gridWidth": 60`} {
		if !strings.Contains(jb.String(), want) {
			t.Errorf("JSON output missing %q:\n%s", want, jb.String())
		}
	}

	var cb strings.Builder
	if err := WriteResultsCSV(&cb, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows:\n%s", len(lines), cb.String())
	}
	if !strings.HasPrefix(lines[0], "circuit,circuit_index") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "8bitadder") || !strings.Contains(lines[2], "non-FT") {
		t.Errorf("CSV rows wrong:\n%s", cb.String())
	}
}
