package leqa

import (
	"strings"
	"testing"
)

// TestApplyEnvTuning covers the LEQA_* startup knobs: unset variables leave
// the defaults alone, set ones land in the dispatch thresholds, and
// non-integer values fail with the variable named.
func TestApplyEnvTuning(t *testing.T) {
	savedPar, savedShard := ParallelThreshold(), ShardThreshold()
	defer func() {
		SetParallelThreshold(savedPar)
		SetShardThreshold(savedShard)
	}()

	t.Run("Unset", func(t *testing.T) {
		t.Setenv(EnvParallelThreshold, "")
		t.Setenv(EnvShardThreshold, "")
		SetParallelThreshold(12345)
		SetShardThreshold(67890)
		if err := ApplyEnvTuning(); err != nil {
			t.Fatal(err)
		}
		if ParallelThreshold() != 12345 || ShardThreshold() != 67890 {
			t.Fatalf("unset env changed thresholds: parallel=%d shard=%d",
				ParallelThreshold(), ShardThreshold())
		}
	})

	t.Run("Set", func(t *testing.T) {
		t.Setenv(EnvParallelThreshold, "1000")
		t.Setenv(EnvShardThreshold, "0")
		if err := ApplyEnvTuning(); err != nil {
			t.Fatal(err)
		}
		if ParallelThreshold() != 1000 {
			t.Errorf("ParallelThreshold = %d, want 1000", ParallelThreshold())
		}
		if ShardThreshold() != 0 {
			t.Errorf("ShardThreshold = %d, want 0 (disabled)", ShardThreshold())
		}
	})

	t.Run("Invalid", func(t *testing.T) {
		t.Setenv(EnvParallelThreshold, "lots")
		err := ApplyEnvTuning()
		if err == nil || !strings.Contains(err.Error(), EnvParallelThreshold) {
			t.Fatalf("err = %v, want mention of %s", err, EnvParallelThreshold)
		}
	})

	t.Run("StoreUnset", func(t *testing.T) {
		t.Setenv(EnvStoreDir, "")
		t.Setenv(EnvStoreMem, "")
		t.Setenv(EnvStoreDiskBytes, "")
		in := AnalysisStoreOptions{MemEntries: 7, Dir: "/keep", MaxDiskBytes: 99}
		got, err := StoreOptionsFromEnv(in)
		if err != nil {
			t.Fatal(err)
		}
		if got != in {
			t.Fatalf("unset env changed store options: %+v", got)
		}
	})

	t.Run("StoreSet", func(t *testing.T) {
		t.Setenv(EnvStoreDir, "/tmp/qca")
		t.Setenv(EnvStoreMem, "128")
		t.Setenv(EnvStoreDiskBytes, "1073741824")
		got, err := StoreOptionsFromEnv(AnalysisStoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := AnalysisStoreOptions{MemEntries: 128, Dir: "/tmp/qca", MaxDiskBytes: 1 << 30}
		if got != want {
			t.Fatalf("StoreOptionsFromEnv = %+v, want %+v", got, want)
		}
	})

	t.Run("StoreInvalid", func(t *testing.T) {
		t.Setenv(EnvStoreDiskBytes, "huge")
		_, err := StoreOptionsFromEnv(AnalysisStoreOptions{})
		if err == nil || !strings.Contains(err.Error(), EnvStoreDiskBytes) {
			t.Fatalf("err = %v, want mention of %s", err, EnvStoreDiskBytes)
		}
	})
}
