package leqa_test

import (
	"context"
	"reflect"
	"testing"

	"repro/leqa"
)

// storeRunner builds a small runner with a fresh analysis store attached.
func storeRunner(t *testing.T, opt leqa.AnalysisStoreOptions) (*leqa.Runner, *leqa.AnalysisStore) {
	t.Helper()
	r, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := leqa.NewAnalysisStore(opt)
	if err != nil {
		t.Fatal(err)
	}
	r.SetAnalysisStore(st)
	return r, st
}

// TestRunSourcesWithStore proves the store-backed source sweep is bitwise
// identical to the plain streaming one, and that re-running the same
// sources turns analyses into store hits.
func TestRunSourcesWithStore(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder")
	paths := writeQCFiles(t, circuits)
	sources := func() []leqa.Source {
		return []leqa.Source{
			leqa.FileSource(paths[0], leqa.IngestOptions{}),
			leqa.FileSource(paths[1], leqa.IngestOptions{}),
		}
	}

	plain, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunSources(context.Background(), sources())
	if err != nil {
		t.Fatal(err)
	}

	r, st := storeRunner(t, leqa.AnalysisStoreOptions{Dir: t.TempDir()})
	got, err := r.RunSources(context.Background(), sources())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("row %d errs: store %v, plain %v", i, got[i].Err, want[i].Err)
		}
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("row %d: store-backed estimate diverges from streaming", i)
		}
	}
	if s := st.Stats(); s.Misses != 2 {
		t.Fatalf("first run misses = %d, want 2 (%s)", s.Misses, s)
	}

	again, err := r.RunSources(context.Background(), sources())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(again[i].Result, want[i].Result) {
			t.Errorf("row %d: store-hit estimate diverges", i)
		}
	}
	s := st.Stats()
	if s.Hits < 2 {
		t.Errorf("second run hits = %d, want >= 2 (%s)", s.Hits, s)
	}
	if s.Misses != 2 {
		t.Errorf("second run added misses: %d, want still 2 (%s)", s.Misses, s)
	}
}

// TestGridSourcesWithStoreAndAnalysisSource proves a grid mixing streamed,
// in-memory and Analysis-backed (by-reference) sources over a store matches
// the storeless engine cell for cell — including the single-column path,
// which the store reroutes through shared analyses.
func TestGridSourcesWithStoreAndAnalysisSource(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder", "mod16adder")
	paths := writeQCFiles(t, circuits)
	p1 := leqa.DefaultParams()
	p1.Grid = leqa.Grid{Width: 16, Height: 16}
	p2 := leqa.DefaultParams()
	p2.Grid = leqa.Grid{Width: 24, Height: 24}

	for _, cols := range [][]leqa.Params{{p1}, {p1, p2}} {
		r, st := storeRunner(t, leqa.AnalysisStoreOptions{})
		plain, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plain.SweepGrid(context.Background(), circuits, cols)
		if err != nil {
			t.Fatal(err)
		}

		// Seed the store with circuit 2's analysis, then reference it.
		a, digest, err := st.GetOrAnalyze(leqa.NewCircuitStream(circuits[2]))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := st.Get(digest)
		if err != nil || ref != a {
			t.Fatalf("Get(%s) = %p, %v; want the seeded analysis %p", digest, ref, err, a)
		}
		sources := []leqa.Source{
			leqa.FileSource(paths[0], leqa.IngestOptions{}),
			leqa.CircuitSource(circuits[1]),
			leqa.AnalysisSource(circuits[2].Name, a),
		}
		got, err := r.SweepGridSources(context.Background(), sources, cols)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%d cells, want %d", len(got), len(want))
		}
		for k := range want {
			if got[k].Err != nil || want[k].Err != nil {
				t.Fatalf("cols=%d cell %d errs: store %v, plain %v", len(cols), k, got[k].Err, want[k].Err)
			}
			if !reflect.DeepEqual(got[k].Result, want[k].Result) {
				t.Errorf("cols=%d cell %d: store-backed grid diverges", len(cols), k)
			}
		}
	}
}

// TestDigestHelpers covers the public digest plumbing: circuit and stream
// digests agree, refs round-trip, and malformed refs are rejected.
func TestDigestHelpers(t *testing.T) {
	c := streamTestCircuits(t, "ham7")[0]
	d1, err := leqa.CircuitDigest(c)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := leqa.StreamDigest(leqa.NewCircuitStream(c))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("circuit digest %s != stream digest %s", d1, d2)
	}
	ref := leqa.FormatDigestRef(d1)
	back, err := leqa.ParseDigestRef(ref)
	if err != nil || back != d1 {
		t.Fatalf("ParseDigestRef(%s) = %q, %v", ref, back, err)
	}
	if _, err := leqa.ParseDigestRef("md5:abc"); err == nil {
		t.Fatal("bad ref accepted")
	}
}
