package leqa_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/leqa"
)

func streamTestCircuits(t *testing.T, names ...string) []*leqa.Circuit {
	t.Helper()
	circuits := make([]*leqa.Circuit, len(names))
	for i, name := range names {
		c, err := leqa.GenerateFT(name)
		if err != nil {
			t.Fatalf("generating %s: %v", name, err)
		}
		circuits[i] = c
	}
	return circuits
}

func streamTestParams() []leqa.Params {
	small := leqa.DefaultParams()
	small.Grid = leqa.Grid{Width: 20, Height: 20}
	large := leqa.DefaultParams()
	large.Grid = leqa.Grid{Width: 35, Height: 35}
	large.ChannelCapacity = 3
	return []leqa.Params{small, large}
}

// TestSweepGridStreamMatchesSweepGrid pins the contract the HTTP service
// relies on: the streamed cells are bitwise identical to the collected
// batch, and arrive in circuit-major input order.
func TestSweepGridStreamMatchesSweepGrid(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder", "mod16adder")
	paramSets := streamTestParams()
	r, err := leqa.NewRunner(paramSets[0], leqa.EstimateOptions{}, 3)
	if err != nil {
		t.Fatal(err)
	}

	want, err := r.SweepGrid(context.Background(), circuits, paramSets)
	if err != nil {
		t.Fatal(err)
	}

	var got []leqa.GridCell
	err = r.SweepGridStream(context.Background(), circuits, paramSets, func(cell leqa.GridCell) error {
		got = append(got, cell)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(got) != len(circuits)*len(paramSets) {
		t.Fatalf("streamed %d cells, want %d", len(got), len(circuits)*len(paramSets))
	}
	for k, cell := range got {
		i, j := k/len(paramSets), k%len(paramSets)
		if cell.CircuitIndex != i || cell.ParamsIndex != j {
			t.Fatalf("cell %d is (%d,%d), want (%d,%d): stream must keep circuit-major input order",
				k, cell.CircuitIndex, cell.ParamsIndex, i, j)
		}
		if !reflect.DeepEqual(cell, want[k]) {
			t.Fatalf("cell %d differs between stream and batch:\nstream: %+v\nbatch:  %+v", k, cell, want[k])
		}
	}
}

func TestSweepGridStreamEmitErrorStopsStream(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder", "mod16adder")
	paramSets := streamTestParams()
	r, err := leqa.NewRunner(paramSets[0], leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("client went away")
	emitted := 0
	err = r.SweepGridStream(context.Background(), circuits, paramSets, func(leqa.GridCell) error {
		emitted++
		if emitted == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if emitted != 2 {
		t.Fatalf("emit ran %d times after failing on the 2nd row", emitted)
	}
}

func TestSweepGridStreamCancelledContext(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "4bitadder")
	paramSets := streamTestParams()
	r, err := leqa.NewRunner(paramSets[0], leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var got []leqa.GridCell
	err = r.SweepGridStream(ctx, circuits, paramSets, func(cell leqa.GridCell) error {
		got = append(got, cell)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every slot is still accounted for; the cells carry the cancellation.
	if len(got) != len(circuits)*len(paramSets) {
		t.Fatalf("streamed %d cells, want %d error rows", len(got), len(circuits)*len(paramSets))
	}
	for _, cell := range got {
		if !errors.Is(cell.Err, context.Canceled) {
			t.Fatalf("cell (%d,%d) err = %v, want context.Canceled", cell.CircuitIndex, cell.ParamsIndex, cell.Err)
		}
	}
}

func TestSweepGridStreamRejectsBadParams(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7")
	bad := leqa.DefaultParams()
	bad.Grid = leqa.Grid{Width: 0, Height: 0}
	r, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = r.SweepGridStream(context.Background(), circuits, []leqa.Params{bad}, func(leqa.GridCell) error {
		t.Fatal("emit must not run when a parameter set fails validation")
		return nil
	})
	if err == nil {
		t.Fatal("want a validation error")
	}
}

func TestRunStreamMatchesRun(t *testing.T) {
	circuits := streamTestCircuits(t, "ham7", "mod16adder")
	r, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Run(context.Background(), circuits)
	if err != nil {
		t.Fatal(err)
	}
	var got []leqa.SweepResult
	err = r.RunStream(context.Background(), circuits, func(sr leqa.SweepResult) error {
		got = append(got, sr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed results differ from batch:\nstream: %+v\nbatch:  %+v", got, want)
	}
}

func TestRunNamedStreamPerRowErrors(t *testing.T) {
	names := []string{"ham7", "no-such-benchmark", "mod16adder"}
	r, err := leqa.NewRunner(leqa.DefaultParams(), leqa.EstimateOptions{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []leqa.SweepResult
	err = r.RunNamedStream(context.Background(), names, func(sr leqa.SweepResult) error {
		got = append(got, sr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("streamed %d rows, want 3", len(got))
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("good rows failed: %v / %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Fatal("bad generator spec must fail its own row only")
	}
}
