package leqa

import (
	"container/list"
	"context"
	"strconv"
	"sync"

	"repro/internal/fabric"
)

// DefaultResultMemoEntries is the result memo's LRU capacity when the
// configuration doesn't choose one. Results are small (a few hundred bytes
// plus the critical-path node list), so the default leans generous.
const DefaultResultMemoEntries = 256

// ResultMemo is a single-flight LRU over finished estimates, keyed by
// (content digest, canonical params key, estimator options) — the layer
// above the analysis store's "parse once, estimate forever": a warm
// identical estimate/sweep/grid cell skips analyze and estimate entirely and
// returns the memoized Result. Keys are exact (fabric.ParamsKey is a
// collision-free encoding, the digest is the circuit's SHA-256), so a hit
// can never change what a cell would have computed.
//
// Single-flight: concurrent cells with the same key coalesce — the first
// claims the entry and computes, the rest wait for its result. Errors are
// never memoized; a failed entry is unpublished so the next claim
// recomputes. Safe for concurrent use.
type ResultMemo struct {
	mu        sync.Mutex
	cap       int
	items     map[string]*list.Element
	order     *list.List // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
}

// ResultMemoStats is a snapshot of a memo's cumulative counters. Hits count
// claims that found a resident or in-flight entry (coalesced waiters
// included); Misses count claims that had to compute.
type ResultMemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
}

// memoEntry is one key's slot: fulfilled exactly once by its owner, after
// which res/err are immutable and done is closed.
type memoEntry struct {
	key  string
	done chan struct{}
	res  *EstimateResult
	err  error
}

// NewResultMemo builds a result memo holding up to entries results;
// entries ≤ 0 selects DefaultResultMemoEntries.
func NewResultMemo(entries int) *ResultMemo {
	if entries <= 0 {
		entries = DefaultResultMemoEntries
	}
	return &ResultMemo{
		cap:   entries,
		items: make(map[string]*list.Element),
		order: list.New(),
	}
}

// claim finds or creates the entry for key. owned reports that the caller
// must compute the result and fulfill the entry (every waiter blocks until
// it does — fulfill on every path). owned == false means the entry is
// resident or in flight: wait on it, but only after fulfilling any entries
// this caller owns, so overlapping claim sets cannot deadlock.
func (m *ResultMemo) claim(key string) (e *memoEntry, owned bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		m.hits++
		m.order.MoveToFront(el)
		return el.Value.(*memoEntry), false
	}
	m.misses++
	e = &memoEntry{key: key, done: make(chan struct{})}
	m.items[key] = m.order.PushFront(e)
	for m.order.Len() > m.cap {
		el := m.order.Back()
		m.order.Remove(el)
		delete(m.items, el.Value.(*memoEntry).key)
		m.evictions++
	}
	return e, true
}

// fulfill publishes an owned entry's outcome and wakes every waiter. A
// non-nil err unpublishes the entry first (if still resident), so failures —
// including cancellations — are never served from the memo.
func (m *ResultMemo) fulfill(e *memoEntry, res *EstimateResult, err error) {
	if err != nil {
		m.mu.Lock()
		if el, ok := m.items[e.key]; ok && el.Value.(*memoEntry) == e {
			m.order.Remove(el)
			delete(m.items, e.key)
		}
		m.mu.Unlock()
	}
	e.res, e.err = res, err
	close(e.done)
}

// wait blocks until the entry is fulfilled or ctx is done.
func (e *memoEntry) wait(ctx context.Context) (*EstimateResult, error) {
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats snapshots the memo's counters.
func (m *ResultMemo) Stats() ResultMemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ResultMemoStats{
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evictions,
		Entries:   m.order.Len(),
		Capacity:  m.cap,
	}
}

// Purge drops every resident entry (in-flight computations fulfill their
// waiters normally but are no longer findable). Counters are preserved.
func (m *ResultMemo) Purge() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = make(map[string]*list.Element)
	m.order = list.New()
}

// SetResultMemo attaches a (digest, params) result memo to the runner's
// estimate/sweep/grid cell paths; nil detaches. The memo key incorporates
// the runner's estimator options, so runners with different truncation or
// ablation settings can safely share one memo (the leqad per-request
// override path does exactly that). Set before concurrent runs start; the
// field is read unsynchronized on the estimate path. Memoized results are
// shared pointers — treat Results as immutable, as every engine path already
// does.
func (r *Runner) SetResultMemo(m *ResultMemo) {
	r.memo = m
	r.memoOpt = strconv.Itoa(r.opt.Truncation) + "|" + strconv.FormatBool(r.opt.DisableCongestion) + "|"
}

// ResultMemo reports the attached result memo (nil when none).
func (r *Runner) ResultMemo() *ResultMemo { return r.memo }

// memoKey is the full memo key of one (circuit, params) cell under the
// runner's options. Every component is an exact encoding, so equal keys
// imply bitwise-identical estimates.
func (r *Runner) memoKey(digest string, pk fabric.ParamsKey) string {
	return r.memoOpt + digest + "|" + string(pk)
}
