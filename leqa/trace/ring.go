package trace

import (
	"sync"
	"time"
)

// Snapshot is one finished request's trace record — the JSON element
// GET /debug/requests serves. The HTTP envelope fields are filled by the
// server; the span data comes from Capture.
type Snapshot struct {
	// ID is the request's correlation ID (X-Request-Id).
	ID string `json:"id"`
	// Method, Path and Status describe the HTTP exchange.
	Method string `json:"method,omitempty"`
	Path   string `json:"path,omitempty"`
	Status int    `json:"status,omitempty"`
	// Start and DurMs time the whole request.
	Start time.Time `json:"start"`
	DurMs float64   `json:"durMs"`
	// Rows counts streamed result rows (0 for non-batch endpoints).
	Rows int `json:"rows,omitempty"`
	// Error carries the terminal failure, if any.
	Error string `json:"error,omitempty"`
	// Spans are the retained individual span records; DroppedSpans counts
	// the overflow past MaxSpans (still present in Totals).
	Spans        []Span `json:"spans,omitempty"`
	DroppedSpans int    `json:"droppedSpans,omitempty"`
	// Totals aggregates spans per phase.
	Totals []PhaseTotal `json:"totals,omitempty"`
}

// Capture freezes the trace into a Snapshot, timing the request as
// start → now. Envelope fields (Method, Path, Status, Rows, Error) are the
// caller's to fill.
func (t *Trace) Capture() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return Snapshot{
		ID:           t.ID(),
		Start:        t.start,
		DurMs:        durMs(time.Since(t.start)),
		Spans:        t.Spans(),
		DroppedSpans: t.Dropped(),
		Totals:       t.Totals(),
	}
}

// Ring is a fixed-capacity buffer of the most recent request snapshots —
// the x/net/trace-style debug surface behind GET /debug/requests. Safe
// for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []Snapshot
	next int
	full bool
}

// DefaultRingSize is the snapshot capacity servers use when unconfigured.
const DefaultRingSize = 128

// NewRing builds a ring retaining the last n snapshots (n ≤ 0 selects
// DefaultRingSize).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Ring{buf: make([]Snapshot, n)}
}

// Add records one finished request, evicting the oldest when full.
func (r *Ring) Add(s Snapshot) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshots returns the retained records, newest first.
func (r *Ring) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]Snapshot, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
