package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveAggregatesAndRetains(t *testing.T) {
	tr := New("abc123")
	start := tr.Start()
	tr.Observe(SpanAnalyze, "store=miss shards=2", start, 30*time.Millisecond)
	tr.Observe(SpanEstimate, "", start.Add(30*time.Millisecond), 10*time.Millisecond)
	tr.Observe(SpanEstimate, "", start.Add(40*time.Millisecond), 20*time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	if spans[0].Name != SpanAnalyze || spans[0].Detail != "store=miss shards=2" {
		t.Fatalf("first span = %+v", spans[0])
	}
	if spans[1].OffsetMs != 30 || spans[2].DurMs != 20 {
		t.Fatalf("span timing wrong: %+v", spans[1:])
	}

	totals := tr.Totals()
	if len(totals) != 2 {
		t.Fatalf("totals = %+v, want 2 phases", totals)
	}
	// Canonical order: analyze before estimate.
	if totals[0].Name != SpanAnalyze || totals[1].Name != SpanEstimate {
		t.Fatalf("totals order = %q, %q", totals[0].Name, totals[1].Name)
	}
	if totals[1].Count != 2 || totals[1].SumMs != 30 {
		t.Fatalf("estimate total = %+v, want count=2 sum=30ms", totals[1])
	}
}

func TestSpanRetentionCap(t *testing.T) {
	tr := New("cap")
	for i := 0; i < MaxSpans+50; i++ {
		tr.Observe(SpanEmit, "", tr.Start(), time.Millisecond)
	}
	if got := len(tr.Spans()); got != MaxSpans {
		t.Fatalf("retained %d spans, want cap %d", got, MaxSpans)
	}
	if tr.Dropped() != 50 {
		t.Fatalf("dropped = %d, want 50", tr.Dropped())
	}
	// The aggregate still counts everything.
	if tot := tr.Totals(); tot[0].Count != MaxSpans+50 {
		t.Fatalf("aggregate count = %d, want %d", tot[0].Count, MaxSpans+50)
	}
}

func TestServerTimingFormat(t *testing.T) {
	tr := New("st")
	tr.Observe(SpanQueue, "", tr.Start(), 100*time.Microsecond)
	tr.Observe(SpanAnalyze, "store=hit", tr.Start(), 12*time.Millisecond)
	got := tr.ServerTiming()
	want := `queue;dur=0.10, analyze;dur=12.00;desc="store=hit"`
	if got != want {
		t.Fatalf("ServerTiming = %q, want %q", got, want)
	}
	if (*Trace)(nil).ServerTiming() != "" {
		t.Fatal("nil trace must render an empty Server-Timing")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("ctx")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext lost the trace")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must yield a nil trace")
	}
	// Nil receivers are safe to use unconditionally.
	var nilTr *Trace
	nilTr.Observe(SpanIngest, "", time.Now(), time.Second)
	if nilTr.ID() != "" || nilTr.Spans() != nil || nilTr.Totals() != nil {
		t.Fatal("nil trace methods must be no-ops")
	}
}

func TestRequestID(t *testing.T) {
	if id, gen := RequestID("client-supplied-7", ""); id != "client-supplied-7" || gen {
		t.Fatalf("X-Request-Id not honored: %q gen=%v", id, gen)
	}
	tp := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if id, gen := RequestID("", tp); id != "4bf92f3577b34da6a3ce929d0e0e4736" || gen {
		t.Fatalf("traceparent not honored: %q gen=%v", id, gen)
	}
	// Hostile or malformed IDs are replaced, not echoed.
	for _, bad := range []string{"has space", "quote\"", "back\\slash", strings.Repeat("x", 65), "ctl\x01"} {
		id, gen := RequestID(bad, "")
		if !gen || id == bad {
			t.Fatalf("hostile id %q must be regenerated (got %q gen=%v)", bad, id, gen)
		}
	}
	// All-zero traceparent trace-ids are invalid per the W3C spec.
	if _, ok := ParseTraceparent("00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01"); ok {
		t.Fatal("all-zero traceparent accepted")
	}
	id, gen := RequestID("", "")
	if !gen || len(id) != 16 {
		t.Fatalf("generated id = %q gen=%v", id, gen)
	}
	if id2, _ := RequestID("", ""); id2 == id {
		t.Fatalf("generated ids must not repeat: %q", id)
	}
}

func TestRingEvictsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Add(Snapshot{ID: fmt.Sprintf("req-%d", i)})
	}
	got := r.Snapshots()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, want := range []string{"req-6", "req-5", "req-4", "req-3"} {
		if got[i].ID != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first)", i, got[i].ID, want)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	tr := New("race")
	ring := NewRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Observe(SpanEstimate, "", tr.Start(), time.Microsecond)
				ring.Add(tr.Capture())
			}
		}()
	}
	wg.Wait()
	if tot := tr.Totals(); tot[0].Count != 1600 {
		t.Fatalf("aggregate count = %d, want 1600", tot[0].Count)
	}
}

func TestBreakdownMentionsEveryPhase(t *testing.T) {
	tr := New("bd")
	tr.Observe(SpanIngest, "", tr.Start(), time.Millisecond)
	tr.Observe(SpanAnalyze, "shards=3", tr.Start(), 2*time.Millisecond)
	out := tr.Breakdown()
	for _, want := range []string{"trace bd", SpanIngest, SpanAnalyze, "shards=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
}
