// Package trace is the request-scoped observability layer of this
// repository: a Trace carried in a context.Context collects timed span
// records (queue-wait, ingest, analyze, estimate, per-row emit) as one
// request moves through the estimation pipeline, so a slow request is
// attributable phase by phase — which circuit, which store outcome, how
// many shards — rather than only feeding the process-global histograms.
//
// The package is deliberately small and dependency-free: the leqa engine
// records spans through it, the leqad server threads one Trace per HTTP
// request (accepting X-Request-Id / W3C traceparent correlation IDs),
// renders Server-Timing headers from it, and keeps a Ring of the last N
// finished traces behind GET /debug/requests. A nil *Trace is a valid
// no-op receiver, and contexts without a trace cost one Value lookup on
// the hot path — the estimate benchmarks run with no trace attached and
// must stay allocation-free.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical span names. The pipeline phases mirror leqa's PhaseIngest /
// PhaseAnalyze / PhaseEstimate labels so one vocabulary spans /metrics
// histograms, Server-Timing entries and /debug/requests records; queue and
// emit exist only per-request.
const (
	SpanQueue    = "queue"    // admission: request start → worker slot
	SpanIngest   = "ingest"   // source acquisition (generate, open, spool)
	SpanAnalyze  = "analyze"  // fused QODG+IIG graph build (incl. parse)
	SpanEstimate = "estimate" // Algorithm 1 itself
	SpanEmit     = "emit"     // encoding + flushing result rows
)

// spanOrder fixes the rendering order of aggregated phases in
// Server-Timing headers and breakdown strings.
var spanOrder = []string{SpanQueue, SpanIngest, SpanAnalyze, SpanEstimate, SpanEmit}

// MaxSpans bounds the individual span records one Trace retains. Aggregate
// per-name totals keep counting past the cap — a 4096-cell grid keeps its
// full per-phase time accounting while only the first MaxSpans rows appear
// span-by-span in /debug/requests.
const MaxSpans = 96

// Span is one timed pipeline step inside a request.
type Span struct {
	// Name is the step's canonical label (SpanQueue ... SpanEmit).
	Name string `json:"name"`
	// Detail carries step attributes: "store=hit", "shards=4", "row=17".
	Detail string `json:"detail,omitempty"`
	// OffsetMs is the span's start relative to the trace start.
	OffsetMs float64 `json:"offsetMs"`
	// DurMs is the span's wall-clock duration.
	DurMs float64 `json:"durMs"`
}

// PhaseTotal aggregates every span sharing one name — the per-phase
// breakdown Server-Timing and slow-request logs report.
type PhaseTotal struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	SumMs float64 `json:"sumMs"`
	// Detail is the first non-empty span detail seen under this name; for
	// single-circuit requests that is the analyze outcome itself.
	Detail string `json:"detail,omitempty"`
}

// Trace accumulates one request's span records. Safe for concurrent use —
// sweep workers on several goroutines report into the same request's
// trace. The zero value is unusable; construct with New.
type Trace struct {
	id    string
	start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int
	totals  []phaseAgg
}

type phaseAgg struct {
	name   string
	count  int
	sum    time.Duration
	detail string
}

// New builds a trace identified by id (Generate one when the caller has no
// inbound correlation ID) starting now.
func New(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID reports the trace's correlation ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start reports when the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Observe records one finished span that began at start and took d. A nil
// trace ignores the call, so engine code can record unconditionally.
func (t *Trace) Observe(name, detail string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) < MaxSpans {
		t.spans = append(t.spans, Span{
			Name:     name,
			Detail:   detail,
			OffsetMs: durMs(start.Sub(t.start)),
			DurMs:    durMs(d),
		})
	} else {
		t.dropped++
	}
	for i := range t.totals {
		if t.totals[i].name == name {
			t.totals[i].count++
			t.totals[i].sum += d
			if t.totals[i].detail == "" {
				t.totals[i].detail = detail
			}
			return
		}
	}
	t.totals = append(t.totals, phaseAgg{name: name, count: 1, sum: d, detail: detail})
}

// Spans returns a copy of the retained span records in arrival order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Totals returns the per-phase aggregates in canonical phase order (names
// outside the canonical set follow, in first-seen order).
func (t *Trace) Totals() []PhaseTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseTotal, 0, len(t.totals))
	for _, agg := range t.totals {
		out = append(out, PhaseTotal{
			Name:   agg.name,
			Count:  agg.count,
			SumMs:  durMs(agg.sum),
			Detail: agg.detail,
		})
	}
	rank := func(name string) int {
		for i, n := range spanOrder {
			if n == name {
				return i
			}
		}
		return len(spanOrder)
	}
	sort.SliceStable(out, func(i, j int) bool { return rank(out[i].Name) < rank(out[j].Name) })
	return out
}

// Dropped reports how many spans exceeded the retention cap (their time is
// still counted in Totals).
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ServerTiming renders the per-phase totals as a Server-Timing header
// value (durations in milliseconds, details as desc), e.g.
//
//	queue;dur=0.02, analyze;dur=31.40;desc="store=miss shards=2", estimate;dur=12.11
//
// Empty when nothing was observed.
func (t *Trace) ServerTiming() string {
	totals := t.Totals()
	if len(totals) == 0 {
		return ""
	}
	var b strings.Builder
	for i, pt := range totals {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.2f", pt.Name, pt.SumMs)
		if pt.Detail != "" {
			fmt.Fprintf(&b, ";desc=%q", pt.Detail)
		}
	}
	return b.String()
}

// Breakdown renders a human-readable multi-line span summary — the
// cmd/leqa -trace footer and the slow-request log payload.
func (t *Trace) Breakdown() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %.2fms total\n", t.ID(), durMs(time.Since(t.start)))
	for _, pt := range t.Totals() {
		fmt.Fprintf(&b, "  %-9s %10.2fms", pt.Name, pt.SumMs)
		if pt.Count > 1 {
			fmt.Fprintf(&b, "  (%d spans)", pt.Count)
		}
		if pt.Detail != "" {
			fmt.Fprintf(&b, "  [%s]", pt.Detail)
		}
		b.WriteByte('\n')
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  (+%d spans beyond the %d-span retention cap)\n", d, MaxSpans)
	}
	return b.String()
}

func durMs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

type ctxKey struct{}

// NewContext returns a context carrying t; engine code below it records
// spans on the request's trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the context's trace; nil when none is attached
// (every method tolerates a nil receiver, so the result can be used
// unconditionally).
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Generate mints a fresh 16-hex-character request ID from crypto/rand.
func Generate() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand never fails on supported platforms; a degraded ID
		// beats a dead request path.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(buf[:])
}

// ParseTraceparent extracts the 32-hex trace-id field of a W3C
// traceparent header ("00-<32 hex>-<16 hex>-<2 hex>"); false when the
// value does not parse.
func ParseTraceparent(s string) (string, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[1]) != 32 || !isHex(parts[1]) || parts[1] == strings.Repeat("0", 32) {
		return "", false
	}
	return parts[1], true
}

// RequestID resolves one request's correlation ID from inbound headers:
// X-Request-Id wins, then a W3C traceparent's trace-id, then a freshly
// generated ID. generated reports whether the ID was minted here. IDs are
// sanitized to at most 64 header-safe characters so hostile values cannot
// smuggle header or log structure.
func RequestID(xRequestID, traceparent string) (id string, generated bool) {
	if id := sanitizeID(xRequestID); id != "" {
		return id, false
	}
	if id, ok := ParseTraceparent(traceparent); ok {
		return id, false
	}
	return Generate(), true
}

// sanitizeID keeps printable non-space ASCII (minus '"' and '\\'), capped
// at 64 characters; anything else empties the ID so a fresh one is minted.
func sanitizeID(s string) string {
	if len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return s
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}
