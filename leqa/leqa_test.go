package leqa

import (
	"strings"
	"testing"
)

func TestGenerateEstimateMapFlow(t *testing.T) {
	c, err := GenerateFT("ham3")
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	est, err := Estimate(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if est.EstimatedLatency <= 0 {
		t.Fatalf("estimate = %v", est.EstimatedLatency)
	}
	act, err := MapActual(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Latency <= 0 {
		t.Fatalf("actual = %v", act.Latency)
	}
}

func TestCompareHam3(t *testing.T) {
	c, err := GenerateFT("ham3")
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(c, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Name != "ham3" || cmp.Operations != 19 || cmp.Qubits != 3 {
		t.Errorf("row = %+v", cmp)
	}
	if cmp.ErrorPct < 0 || cmp.ErrorPct > 50 {
		t.Errorf("error %.2f%% out of plausible range", cmp.ErrorPct)
	}
	if cmp.MapRuntime <= 0 || cmp.EstRuntime <= 0 {
		t.Error("runtimes not recorded")
	}
}

func TestDecomposeFacade(t *testing.T) {
	raw, err := Generate("ham3")
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Decompose(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ft.IsFT() {
		t.Error("Decompose output not FT")
	}
}

func TestParseSaveLoadRoundTrip(t *testing.T) {
	c, err := Parse(strings.NewReader(".v a b\nBEGIN\nt2 a b\nH a\nEND\n"), "mini")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(dir+"/mini.qc", c); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(dir + "/mini.qc")
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != 2 {
		t.Errorf("round trip gates = %d", c2.NumGates())
	}
}

func TestBuildGraphs(t *testing.T) {
	c, _ := GenerateFT("ham3")
	g, err := BuildQODG(c)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 21 {
		t.Errorf("QODG nodes = %d, want 21", g.NumNodes())
	}
	ig, err := BuildIIG(c)
	if err != nil {
		t.Fatal(err)
	}
	if ig.Q != 3 {
		t.Errorf("IIG Q = %d", ig.Q)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 18 {
		t.Fatalf("benchmark list has %d entries", len(names))
	}
	if names[0] != "8bitadder" {
		t.Errorf("first benchmark = %q (Table 3 order)", names[0])
	}
	if names[len(names)-1] != "gf2^256mult" {
		t.Errorf("last benchmark = %q", names[len(names)-1])
	}
}

func TestCalibrateImprovesOrHolds(t *testing.T) {
	train := make([]*Circuit, 0, 2)
	for _, name := range []string{"8bitadder", "ham3"} {
		c, err := GenerateFT(name)
		if err != nil {
			t.Fatal(err)
		}
		train = append(train, c)
	}
	p := DefaultParams()
	meanErr := func(q Params) float64 {
		sum := 0.0
		for _, c := range train {
			cmp, err := CompareWith(c, q, EstimateOptions{}, MapOptions{})
			if err != nil {
				t.Fatal(err)
			}
			sum += cmp.ErrorPct
		}
		return sum / float64(len(train))
	}
	before := meanErr(p)
	tuned, err := Calibrate(train, p)
	if err != nil {
		t.Fatal(err)
	}
	after := meanErr(tuned)
	if after > before+0.5 {
		t.Errorf("calibration worsened mean error: %.2f%% -> %.2f%%", before, after)
	}
	if tuned.QubitSpeed <= 0 {
		t.Errorf("calibrated v = %v", tuned.QubitSpeed)
	}
}

func TestCalibrateRejectsEmpty(t *testing.T) {
	if _, err := Calibrate(nil, DefaultParams()); err == nil {
		t.Error("want error for empty training set")
	}
}

func TestEstimateWithAblations(t *testing.T) {
	c, _ := GenerateFT("8bitadder")
	p := DefaultParams()
	def, err := EstimateWith(c, p, EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noCong, err := EstimateWith(c, p, EstimateOptions{DisableCongestion: true})
	if err != nil {
		t.Fatal(err)
	}
	if noCong.EstimatedLatency > def.EstimatedLatency+1e-9 {
		t.Error("congestion ablation increased the estimate")
	}
}
