package leqa

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"

	"repro/leqa/trace"
)

// Phase labels reported to the PhaseObserver. One estimation passes through
// up to three phases:
//
//   - PhaseIngest — acquiring the gate source: generating a named
//     benchmark, opening a lazy stream source, or (server-side) spooling an
//     upload. Materialized circuits handed to Run directly have no ingest
//     phase.
//   - PhaseAnalyze — the fused graph build (QODG + IIG). For streamed
//     sources this includes gate parsing: streaming fuses parse and build
//     by design, so the parse cost is billed to the analysis that consumes
//     it.
//   - PhaseEstimate — Algorithm 1 itself (weights, critical path, zone
//     model).
const (
	PhaseIngest   = "ingest"
	PhaseAnalyze  = "analyze"
	PhaseEstimate = "estimate"
)

// PhaseObserver receives the wall-clock duration of each completed pipeline
// phase. Implementations must be safe for concurrent use — sweep workers
// report in parallel — and fast: the observer sits on the estimate hot
// path.
type PhaseObserver func(phase string, d time.Duration)

var phaseObserver atomic.Pointer[PhaseObserver]

// SetPhaseObserver registers the process-wide phase observer (nil
// unregisters). One observer exists at a time; leqad registers its metrics
// recorder at startup. Phases that fail mid-way are still reported — the
// duration is the time spent until the error.
func SetPhaseObserver(fn PhaseObserver) {
	if fn == nil {
		phaseObserver.Store(nil)
		return
	}
	phaseObserver.Store(&fn)
}

// TeePhaseObservers fans each phase report out to every non-nil observer in
// order — the composition hook for callers that feed one phase stream into
// several sinks (leqad tees cumulative histograms and sliding windows).
func TeePhaseObservers(obs ...PhaseObserver) PhaseObserver {
	live := make([]PhaseObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 1 {
		return live[0]
	}
	return func(phase string, d time.Duration) {
		for _, o := range live {
			o(phase, d)
		}
	}
}

// ObservePhase feeds one finished phase to the registered observer — the
// hook for callers that run a pipeline phase outside the Runner, such as
// leqad resolving a circuit spec (its ingest phase) before estimation.
// No-op when no observer is registered.
func ObservePhase(phase string, d time.Duration) {
	if p := phaseObserver.Load(); p != nil {
		(*p)(phase, d)
	}
}

// observePhase reports one finished phase that began at start — to the
// process-global observer (feeding /metrics) and, when ctx carries a
// request trace, as a span on that trace.
func observePhase(ctx context.Context, phase string, start time.Time) {
	observePhaseDetail(ctx, phase, start, nil)
}

// observePhaseDetail is observePhase with a lazily built span detail
// ("store=hit shards=4"). detail runs only when a trace is attached, so the
// untraced hot path never constructs detail strings; benchmarks hold the
// traced path to that budget too because the closure never escapes.
func observePhaseDetail(ctx context.Context, phase string, start time.Time, detail func() string) {
	d := time.Since(start)
	ObservePhase(phase, d)
	if tr := trace.FromContext(ctx); tr != nil {
		var ds string
		if detail != nil {
			ds = detail()
		}
		tr.Observe(phase, ds, start, d)
	}
}

// itoa keeps span-detail builders terse (they already live behind the
// trace-attached check).
func itoa(n int) string { return strconv.Itoa(n) }

// analyzeDetail renders an analyze span's attributes, e.g.
// "store=hit gates=16921 shards=4". Only built under an attached trace.
func analyzeDetail(store string, gates, shards int) string {
	s := "gates=" + strconv.Itoa(gates) + " shards=" + strconv.Itoa(shards)
	if store != "" {
		s = "store=" + store + " " + s
	}
	return s
}
