package leqa

import (
	"sync/atomic"
	"time"
)

// Phase labels reported to the PhaseObserver. One estimation passes through
// up to three phases:
//
//   - PhaseIngest — acquiring the gate source: generating a named
//     benchmark, opening a lazy stream source, or (server-side) spooling an
//     upload. Materialized circuits handed to Run directly have no ingest
//     phase.
//   - PhaseAnalyze — the fused graph build (QODG + IIG). For streamed
//     sources this includes gate parsing: streaming fuses parse and build
//     by design, so the parse cost is billed to the analysis that consumes
//     it.
//   - PhaseEstimate — Algorithm 1 itself (weights, critical path, zone
//     model).
const (
	PhaseIngest   = "ingest"
	PhaseAnalyze  = "analyze"
	PhaseEstimate = "estimate"
)

// PhaseObserver receives the wall-clock duration of each completed pipeline
// phase. Implementations must be safe for concurrent use — sweep workers
// report in parallel — and fast: the observer sits on the estimate hot
// path.
type PhaseObserver func(phase string, d time.Duration)

var phaseObserver atomic.Pointer[PhaseObserver]

// SetPhaseObserver registers the process-wide phase observer (nil
// unregisters). One observer exists at a time; leqad registers its metrics
// recorder at startup. Phases that fail mid-way are still reported — the
// duration is the time spent until the error.
func SetPhaseObserver(fn PhaseObserver) {
	if fn == nil {
		phaseObserver.Store(nil)
		return
	}
	phaseObserver.Store(&fn)
}

// ObservePhase feeds one finished phase to the registered observer — the
// hook for callers that run a pipeline phase outside the Runner, such as
// leqad resolving a circuit spec (its ingest phase) before estimation.
// No-op when no observer is registered.
func ObservePhase(phase string, d time.Duration) {
	if p := phaseObserver.Load(); p != nil {
		(*p)(phase, d)
	}
}

// observePhase reports one finished phase that began at start.
func observePhase(phase string, start time.Time) {
	ObservePhase(phase, time.Since(start))
}
