package leqa

import (
	"context"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/pool"
)

// This file holds the streaming counterparts of Run/RunNamed/SweepGrid:
// identical computation fanned across the same pool, but every finished row
// is handed to a caller-supplied emit callback in strict input order as
// soon as the contiguous prefix through that row has completed — row 0 is
// delivered while later rows are still computing. The batch engines collect
// these streams, so streamed and collected results are bitwise identical.
//
// emit runs on the caller's goroutine (safe for http.ResponseWriter and
// other single-goroutine sinks). A non-nil emit error — a disconnected
// network client, typically — stops the feed early and is returned; fn
// work not yet started is never run.

// SweepGridStream estimates the circuits × paramSets cross product exactly
// like SweepGrid — cells in circuit-major input order — but delivers every
// GridCell to emit as soon as its row completes instead of collecting the
// batch. Each worker owns one whole row (one circuit × every parameter
// column): it analyzes the circuit once in its own arena and runs the
// estimate phase as a single batched core.EstimateAnalysisBatch call, so the
// QODG adjacency streams through the cache once for all columns.
// Cancellation is observed per row: cells that never ran carry ctx's error,
// and the function returns ctx.Err() after the last delivery. A
// parameter-set validation failure is returned before any work starts.
func (r *Runner) SweepGridStream(ctx context.Context, circuits []*Circuit, paramSets []Params, emit func(GridCell) error) error {
	ests, err := r.gridEstimators(paramSets)
	if err != nil {
		return err
	}
	cols := newGridColumns(paramSets)
	// Stream the cross product row by row. Every row is dispatched even
	// after cancellation — cancelled cells carry the context error — so the
	// stream always accounts for every (circuit, params) pair. Each row
	// borrows a pooled arena for both phases' scratch: the analysis feeds
	// exactly this row, so the graph build runs in the same arena and the
	// whole row is near-allocation-free once the pool is warm.
	err = pool.ForEachOrdered(len(circuits), r.workers, func(i int) []GridCell {
		c := circuits[i]
		row := make([]GridCell, len(paramSets))
		for j := range row {
			row[j] = GridCell{
				CircuitIndex: i,
				ParamsIndex:  j,
				Name:         c.Name,
				Params:       paramSets[j],
			}
		}
		if err := ctx.Err(); err != nil {
			for j := range row {
				row[j].Err = err
			}
			return row
		}
		ar := r.arena()
		defer r.release(ar)
		r.estimateRow(ctx, row, ests, cols,
			func() (string, bool) {
				if ftError(c) != nil {
					return "", false
				}
				d, err := CircuitDigest(c)
				return d, err == nil
			},
			func() (*analysis.Analysis, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if err := ftError(c); err != nil {
					return nil, err
				}
				t := time.Now()
				a, err := ar.Analyze(c)
				observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
					return analyzeDetail("", c.NumGates(), analysis.ShardPlan(c.NumGates(), ar))
				})
				return a, err
			},
			ar)
		return row
	}, emitRow(emit))
	if err != nil {
		return err
	}
	return ctx.Err()
}

// emitRow adapts a per-cell emit callback to the row-granular pool stream.
func emitRow(emit func(GridCell) error) func([]GridCell) error {
	return func(row []GridCell) error {
		for _, cell := range row {
			if err := emit(cell); err != nil {
				return err
			}
		}
		return nil
	}
}

// estimateRow fills one grid row — one circuit under every parameter column
// — in place. digest lazily reports the circuit's content digest (ok ==
// false when unknown or not worth computing); analyze lazily produces the
// shared Analysis; both run at most once. The row consults the result memo
// first (when attached and the digest is known): memo-hit columns skip
// analyze and estimate entirely, and a row whose unique columns all hit
// never touches the circuit at all. Remaining columns estimate as one
// batched call, and duplicate columns alias their representative's Result.
//
// Memo single-flight discipline: claim every column non-blocking first,
// compute and fulfill all owned entries, and only then wait on entries
// owned by other rows — rows with overlapping claim sets therefore cannot
// deadlock. Errors are never memoized; if a foreign owner fails, the waiter
// recomputes its column directly once.
func (r *Runner) estimateRow(ctx context.Context, row []GridCell, ests []*core.Estimator, cols *gridColumns,
	digest func() (string, bool), analyze func() (*analysis.Analysis, error), ar *analysis.Arena) {
	res := make([]*EstimateResult, len(row))
	errs := make([]error, len(row))

	var owned, foreign map[int]*memoEntry
	probed := false
	if r.memo != nil {
		if d, ok := digest(); ok {
			probed = true
			for _, j := range cols.uniq {
				e, own := r.memo.claim(r.memoKey(d, cols.keys[j]))
				if own {
					if owned == nil {
						owned = make(map[int]*memoEntry)
					}
					owned[j] = e
				} else {
					if foreign == nil {
						foreign = make(map[int]*memoEntry)
					}
					foreign[j] = e
				}
			}
		}
	}
	compute := cols.uniq
	if len(foreign) > 0 {
		compute = make([]int, 0, len(cols.uniq))
		for _, j := range cols.uniq {
			if _, ok := foreign[j]; !ok {
				compute = append(compute, j)
			}
		}
	}

	var a *analysis.Analysis
	var aerr error
	analyzed := false
	ensure := func() (*analysis.Analysis, error) {
		if !analyzed {
			analyzed = true
			a, aerr = analyze()
		}
		return a, aerr
	}

	if len(compute) > 0 {
		if a, err := ensure(); err != nil {
			for _, j := range compute {
				errs[j] = err
			}
		} else if err := ctx.Err(); err != nil {
			for _, j := range compute {
				errs[j] = err
			}
		} else if len(compute) == 1 {
			// One column to compute: the single-column estimate is the
			// batched call's bitwise definition and skips its table setup.
			j := compute[0]
			t := time.Now()
			res[j], errs[j] = ests[j].EstimateAnalysisArena(a, ar)
			observePhaseDetail(ctx, PhaseEstimate, t, func() string {
				if probed {
					return "cols=1 memo=miss"
				}
				return "cols=1"
			})
		} else {
			sub := make([]*core.Estimator, len(compute))
			for i, j := range compute {
				sub[i] = ests[j]
			}
			t := time.Now()
			bres, berrs := core.EstimateAnalysisBatch(sub, a, ar)
			observePhaseDetail(ctx, PhaseEstimate, t, func() string {
				d := "cols=" + itoa(len(sub))
				if probed {
					d += " memo=miss"
				}
				return d
			})
			for i, j := range compute {
				res[j], errs[j] = bres[i], berrs[i]
			}
		}
		for _, j := range compute {
			if e, ok := owned[j]; ok {
				r.memo.fulfill(e, res[j], errs[j])
			}
		}
	} else if probed && len(cols.uniq) > 0 {
		// Every unique column is in flight or resident elsewhere: the row
		// skips analyze and estimate entirely. Record the skip on the trace
		// so a warm cell's span shows where the time didn't go.
		observePhaseDetail(ctx, PhaseEstimate, time.Now(), func() string {
			return "cols=0 memo=hit"
		})
	}

	for j, e := range foreign {
		cr, cerr := e.wait(ctx)
		switch {
		case cerr == nil:
			res[j] = cr
		case ctx.Err() != nil:
			errs[j] = ctx.Err()
		default:
			// The owning row failed and unpublished the entry. Its error may
			// have been transient (its context, not ours), so recompute this
			// column directly once rather than inheriting it.
			if a, err := ensure(); err != nil {
				errs[j] = err
			} else {
				t := time.Now()
				res[j], errs[j] = ests[j].EstimateAnalysisArena(a, ar)
				observePhase(ctx, PhaseEstimate, t)
			}
		}
	}

	for jj := range row {
		j := cols.rep[jj]
		row[jj].Result, row[jj].Err = res[j], errs[j]
	}
}

// RunStream is Run with per-result delivery: every SweepResult reaches emit
// in input order as soon as its prefix is complete.
func (r *Runner) RunStream(ctx context.Context, circuits []*Circuit, emit func(SweepResult) error) error {
	return r.runStream(ctx, len(circuits), func(i int) SweepResult {
		c := circuits[i]
		sr := SweepResult{Index: i, Name: c.Name}
		sr.Result, sr.Err = r.estimateOne(ctx, c)
		return sr
	}, func(i int) string { return circuits[i].Name }, emit)
}

// RunNamedStream is RunNamed with per-result delivery: generation, FT
// lowering, graph builds and estimation all happen inside the pool, and
// each finished benchmark streams out in input order.
func (r *Runner) RunNamedStream(ctx context.Context, names []string, emit func(SweepResult) error) error {
	return r.runStream(ctx, len(names), func(i int) SweepResult {
		return r.generateAndEstimate(ctx, i, names[i])
	}, func(i int) string { return names[i] }, emit)
}

// runStream fans the per-item work across the pool and delivers results in
// input order. Cancelled slots fast-path into error results so the stream
// accounts for every input; emit failures stop the feed.
func (r *Runner) runStream(ctx context.Context, n int, work func(i int) SweepResult, name func(i int) string, emit func(SweepResult) error) error {
	err := pool.ForEachOrdered(n, r.workers, func(i int) SweepResult {
		if err := ctx.Err(); err != nil {
			return SweepResult{Index: i, Name: name(i), Err: err}
		}
		return work(i)
	}, emit)
	if err != nil {
		return err
	}
	return ctx.Err()
}
