package leqa

import (
	"context"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/pool"
)

// This file holds the streaming counterparts of Run/RunNamed/SweepGrid:
// identical computation fanned across the same pool, but every finished row
// is handed to a caller-supplied emit callback in strict input order as
// soon as the contiguous prefix through that row has completed — row 0 is
// delivered while later rows are still computing. The batch engines collect
// these streams, so streamed and collected results are bitwise identical.
//
// emit runs on the caller's goroutine (safe for http.ResponseWriter and
// other single-goroutine sinks). A non-nil emit error — a disconnected
// network client, typically — stops the feed early and is returned; fn
// work not yet started is never run.

// SweepGridStream estimates the circuits × paramSets cross product exactly
// like SweepGrid — each circuit analyzed once, cells in circuit-major input
// order — but delivers every GridCell to emit as it completes instead of
// collecting the batch. Cancellation is observed per cell: cells that
// never ran carry ctx's error, and the function returns ctx.Err() after
// the last delivery. A parameter-set validation failure is returned before
// any work starts.
func (r *Runner) SweepGridStream(ctx context.Context, circuits []*Circuit, paramSets []Params, emit func(GridCell) error) error {
	ests, err := r.gridEstimators(paramSets)
	if err != nil {
		return err
	}
	// Analyses are computed lazily, once per circuit, by whichever worker
	// first needs one — no up-front barrier over the whole batch, so the
	// first circuit's cells stream while later circuits are still
	// unanalyzed. Workers on the same circuit share the computation.
	type lazyAnalysis struct {
		once sync.Once
		a    *analysis.Analysis
		err  error
	}
	analyses := make([]lazyAnalysis, len(circuits))
	analyze := func(i int) (*analysis.Analysis, error) {
		la := &analyses[i]
		la.once.Do(func() {
			if err := ctx.Err(); err != nil {
				la.err = err
				return
			}
			c := circuits[i]
			if la.err = ftError(c); la.err != nil {
				return
			}
			t := time.Now()
			la.a, la.err = analysis.Analyze(c)
			observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
				return analyzeDetail("", c.NumGates(), analysis.ShardPlan(c.NumGates(), nil))
			})
		})
		return la.a, la.err
	}

	// analyzeArena is the single-column fast path: the analysis feeds only
	// the calling worker's one cell, so it runs in that worker's arena with
	// the same check order (ctx, FT, analyze) as the shared lazy path.
	analyzeArena := func(ctx context.Context, c *Circuit, ar *analysis.Arena) (*analysis.Analysis, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ftError(c); err != nil {
			return nil, err
		}
		t := time.Now()
		a, err := ar.Analyze(c)
		observePhaseDetail(ctx, PhaseAnalyze, t, func() string {
			return analyzeDetail("", c.NumGates(), analysis.ShardPlan(c.NumGates(), ar))
		})
		return a, err
	}

	// Stream the cross product. Every slot is dispatched even after
	// cancellation — cancelled cells carry the context error — so the
	// stream always accounts for every (circuit, params) pair. Each cell
	// borrows a pooled arena for its estimate-phase scratch; with a single
	// parameter column the analysis feeds exactly one cell, so the graph
	// build runs in the same arena too and the whole cell is
	// allocation-free once the pool is warm.
	m := len(paramSets)
	err = pool.ForEachOrdered(len(circuits)*m, r.workers, func(k int) GridCell {
		i, j := k/m, k%m
		cell := GridCell{
			CircuitIndex: i,
			ParamsIndex:  j,
			Name:         circuits[i].Name,
			Params:       paramSets[j],
		}
		ar := r.arena()
		defer r.release(ar)
		var a *analysis.Analysis
		var aerr error
		if m == 1 {
			a, aerr = analyzeArena(ctx, circuits[i], ar)
		} else {
			a, aerr = analyze(i)
		}
		switch {
		case aerr != nil:
			cell.Err = aerr
		case ctx.Err() != nil:
			cell.Err = ctx.Err()
		default:
			t := time.Now()
			cell.Result, cell.Err = ests[j].EstimateAnalysisArena(a, ar)
			observePhase(ctx, PhaseEstimate, t)
		}
		return cell
	}, emit)
	if err != nil {
		return err
	}
	return ctx.Err()
}

// RunStream is Run with per-result delivery: every SweepResult reaches emit
// in input order as soon as its prefix is complete.
func (r *Runner) RunStream(ctx context.Context, circuits []*Circuit, emit func(SweepResult) error) error {
	return r.runStream(ctx, len(circuits), func(i int) SweepResult {
		c := circuits[i]
		sr := SweepResult{Index: i, Name: c.Name}
		sr.Result, sr.Err = r.estimateOne(ctx, c)
		return sr
	}, func(i int) string { return circuits[i].Name }, emit)
}

// RunNamedStream is RunNamed with per-result delivery: generation, FT
// lowering, graph builds and estimation all happen inside the pool, and
// each finished benchmark streams out in input order.
func (r *Runner) RunNamedStream(ctx context.Context, names []string, emit func(SweepResult) error) error {
	return r.runStream(ctx, len(names), func(i int) SweepResult {
		return r.generateAndEstimate(ctx, i, names[i])
	}, func(i int) string { return names[i] }, emit)
}

// runStream fans the per-item work across the pool and delivers results in
// input order. Cancelled slots fast-path into error results so the stream
// accounts for every input; emit failures stop the feed.
func (r *Runner) runStream(ctx context.Context, n int, work func(i int) SweepResult, name func(i int) string, emit func(SweepResult) error) error {
	err := pool.ForEachOrdered(n, r.workers, func(i int) SweepResult {
		if err := ctx.Err(); err != nil {
			return SweepResult{Index: i, Name: name(i), Err: err}
		}
		return work(i)
	}, emit)
	if err != nil {
		return err
	}
	return ctx.Err()
}
