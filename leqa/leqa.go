// Package leqa is the public API of this repository: a reproduction of
// "LEQA: Latency Estimation for a Quantum Algorithm Mapped to a Quantum
// Circuit Fabric" (Dousti & Pedram, DAC 2013).
//
// The package bundles the full flow:
//
//	c, _   := leqa.GenerateFT("gf2^16mult")     // or leqa.Load("file.qc") + leqa.Decompose
//	p      := leqa.DefaultParams()              // Table 1 physical parameters
//	est, _ := leqa.Estimate(c, p)               // LEQA: fast estimate (Algorithm 1)
//	act, _ := leqa.MapActual(c, p)              // QSPR-style detailed mapping
//	cmp, _ := leqa.Compare(c, p)                // both, with runtimes and error
//
// Latencies are reported in microseconds (the paper's Table 1 unit);
// Comparison also carries seconds for Table-2-style reporting.
package leqa

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/decompose"
	"repro/internal/fabric"
	"repro/internal/iig"
	"repro/internal/ingest"
	"repro/internal/qodg"
	"repro/internal/qspr"
	"repro/internal/stats"
	"repro/internal/zonemodel"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation lives in focused internal packages.
type (
	// Circuit is a reversible/FT gate netlist.
	Circuit = circuit.Circuit
	// Gate is one netlist operation.
	Gate = circuit.Gate
	// GateType enumerates the gate vocabulary.
	GateType = circuit.GateType
	// Params is the physical parameter set (Table 1).
	Params = fabric.Params
	// Grid is the fabric geometry.
	Grid = fabric.Grid
	// EstimateResult is LEQA's estimate with all model intermediates.
	EstimateResult = core.Result
	// EstimateOptions tunes the estimator (truncation, ablations).
	EstimateOptions = core.Options
	// MapResult is the detailed mapper's outcome.
	MapResult = qspr.Result
	// MapOptions tunes the detailed mapper.
	MapOptions = qspr.Options
	// Placement selects the detailed mapper's initial placement strategy.
	Placement = qspr.Placement
	// QODG is the quantum operation dependency graph.
	QODG = qodg.Graph
	// IIG is the interaction intensity graph.
	IIG = iig.Graph
	// Analysis bundles a circuit's QODG and IIG, built by one fused pass;
	// reusable across every parameter set the circuit is estimated under.
	Analysis = analysis.Analysis
	// ZoneCacheStats is a snapshot of the shared zone-model memo counters.
	ZoneCacheStats = zonemodel.CacheStats
)

// The detailed mapper's placement strategies, re-exported for MapOptions.
const (
	PlaceClustered = qspr.PlaceClustered
	PlaceSpaced    = qspr.PlaceSpaced
	PlaceSpread    = qspr.PlaceSpread
	PlaceRowMajor  = qspr.PlaceRowMajor
)

// DefaultParams returns the paper's Table 1 parameter set.
func DefaultParams() Params { return fabric.Default() }

// ParseGrid parses "WxH" fabric dimensions (e.g. "60x60") — the spelling
// cmd/leqa flags and leqad requests share.
func ParseGrid(s string) (Grid, error) {
	ws, hs, ok := strings.Cut(s, "x")
	if !ok {
		return Grid{}, fmt.Errorf("leqa: grid %q must look like 60x60", s)
	}
	w, err := strconv.Atoi(ws)
	if err != nil {
		return Grid{}, fmt.Errorf("leqa: grid width %q: %v", ws, err)
	}
	h, err := strconv.Atoi(hs)
	if err != nil {
		return Grid{}, fmt.Errorf("leqa: grid height %q: %v", hs, err)
	}
	return Grid{Width: w, Height: h}, nil
}

// Load parses a netlist file into a materialized circuit. The container
// is detected by magic bytes, not extension: textual .qc, binary .qcb,
// and gzip-wrapped either way all load transparently.
func Load(path string) (*Circuit, error) {
	st, err := ingest.Open(path, ingest.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.Materialize()
}

// Parse reads a .qc netlist from a reader.
func Parse(r io.Reader, name string) (*Circuit, error) { return circuit.ParseQC(r, name) }

// Save writes a circuit to a .qc file.
func Save(path string, c *Circuit) error { return circuit.SaveQCFile(path, c) }

// Generate builds a named paper benchmark as a raw reversible netlist
// (gf2^<n>mult, hwb<n>ps, ham<n>, <n>bitadder, mod<2^n>adder).
func Generate(name string) (*Circuit, error) { return benchgen.Generate(name) }

// GenerateFT builds a named paper benchmark lowered to the FT gate set.
func GenerateFT(name string) (*Circuit, error) { return benchgen.GenerateFT(name) }

// Benchmarks lists the paper's 18 benchmark names in Table 3 order.
func Benchmarks() []string { return benchgen.Names() }

// GenerateExactGF2Mult builds the functionally exact GF(2^n) multiplier
// variant (each partial product expanded through the field-polynomial
// reduction) — larger than the count-matched Table 3 netlist but
// classically verified; see internal/benchgen.GF2MultExact.
func GenerateExactGF2Mult(n int) (*Circuit, error) { return benchgen.GF2MultExact(n) }

// Decompose lowers a reversible netlist to the FT gate set with the paper's
// flow (Fredkin → 3 Toffolis, MCT → Toffolis with unshared ancillas,
// Toffoli → the 15-gate {H,T,T†,CNOT} network).
func Decompose(c *Circuit) (*Circuit, error) {
	return decompose.ToFT(c, decompose.Options{})
}

// BuildQODG constructs the dependency graph of a circuit (Fig. 2b).
func BuildQODG(c *Circuit) (*QODG, error) { return qodg.Build(c) }

// BuildIIG constructs the interaction intensity graph of an FT circuit.
func BuildIIG(c *Circuit) (*IIG, error) { return iig.Build(c) }

// Analyze builds both graphs in one fused streaming pass over the gate
// list — the front end Estimate and the sweep engines run, exposed for
// callers that want to amortize one analysis across many estimates.
func Analyze(c *Circuit) (*Analysis, error) { return analysis.Analyze(c) }

// EstimateAnalysis runs LEQA on a previously analyzed circuit.
func EstimateAnalysis(a *Analysis, p Params, opt EstimateOptions) (*EstimateResult, error) {
	est, err := core.New(p, opt)
	if err != nil {
		return nil, err
	}
	return est.EstimateAnalysis(a)
}

// ZoneModelCacheStats reports the shared zone-model memo's cumulative
// hit/miss/eviction counters — the cache every estimate in the process
// funnels through.
func ZoneModelCacheStats() ZoneCacheStats { return zonemodel.Shared.Stats() }

// Estimate runs LEQA (Algorithm 1) with default options.
func Estimate(c *Circuit, p Params) (*EstimateResult, error) {
	return EstimateWith(c, p, EstimateOptions{})
}

// EstimateWith runs LEQA with explicit options.
func EstimateWith(c *Circuit, p Params, opt EstimateOptions) (*EstimateResult, error) {
	est, err := core.New(p, opt)
	if err != nil {
		return nil, err
	}
	return est.Estimate(c)
}

// MapActual runs the detailed scheduler/placer/router with default options.
func MapActual(c *Circuit, p Params) (*MapResult, error) {
	return MapActualWith(c, p, MapOptions{})
}

// MapActualWith runs the detailed mapper with explicit options.
func MapActualWith(c *Circuit, p Params, opt MapOptions) (*MapResult, error) {
	m, err := qspr.New(p, opt)
	if err != nil {
		return nil, err
	}
	return m.Map(c)
}

// Comparison is one Table-2/Table-3 row: actual vs estimated latency and
// tool runtimes for a single circuit.
type Comparison struct {
	Name         string
	Qubits       int
	Operations   int
	ActualSec    float64       // QSPR-style mapped latency, seconds
	EstimatedSec float64       // LEQA estimate, seconds
	ErrorPct     float64       // |est − act| / act · 100
	MapRuntime   time.Duration // wall time of the detailed mapper
	EstRuntime   time.Duration // wall time of LEQA
	Speedup      float64       // MapRuntime / EstRuntime
}

// Compare runs both tools on the circuit and assembles the comparison row.
func Compare(c *Circuit, p Params) (Comparison, error) {
	return CompareWith(c, p, EstimateOptions{}, MapOptions{})
}

// CompareWith is Compare with explicit per-tool options.
func CompareWith(c *Circuit, p Params, eopt EstimateOptions, mopt MapOptions) (Comparison, error) {
	t0 := time.Now()
	act, err := MapActualWith(c, p, mopt)
	if err != nil {
		return Comparison{}, fmt.Errorf("leqa: detailed mapping of %q: %w", c.Name, err)
	}
	mapDur := time.Since(t0)

	t1 := time.Now()
	est, err := EstimateWith(c, p, eopt)
	if err != nil {
		return Comparison{}, fmt.Errorf("leqa: estimating %q: %w", c.Name, err)
	}
	estDur := time.Since(t1)

	cmp := Comparison{
		Name:         c.Name,
		Qubits:       c.NumQubits(),
		Operations:   c.NumGates(),
		ActualSec:    act.Latency / 1e6,
		EstimatedSec: est.EstimatedLatency / 1e6,
		ErrorPct:     stats.AbsErrorPct(act.Latency, est.EstimatedLatency),
		MapRuntime:   mapDur,
		EstRuntime:   estDur,
	}
	if estDur > 0 {
		cmp.Speedup = float64(mapDur) / float64(estDur)
	}
	return cmp, nil
}

// Calibrate tunes the qubit-speed parameter 𝓋 (the paper's mapper
// calibration knob, §3.2) so LEQA's estimates best match the detailed
// mapper on the given training circuits. It runs the mapper once per
// circuit, then golden-section-searches log₁₀𝓋 minimizing the mean absolute
// percentage error. Returns the calibrated parameter set.
func Calibrate(train []*Circuit, p Params) (Params, error) {
	if len(train) == 0 {
		return p, fmt.Errorf("leqa: calibration needs at least one circuit")
	}
	actual := make([]float64, len(train))
	for i, c := range train {
		res, err := MapActual(c, p)
		if err != nil {
			return p, fmt.Errorf("leqa: calibration mapping %q: %w", c.Name, err)
		}
		actual[i] = res.Latency
	}
	meanErr := func(logV float64) float64 {
		q := p.Clone()
		q.QubitSpeed = pow10(logV)
		sum := 0.0
		for i, c := range train {
			res, err := EstimateWith(c, q, EstimateOptions{})
			if err != nil {
				return 1e18
			}
			sum += stats.AbsErrorPct(actual[i], res.EstimatedLatency)
		}
		return sum / float64(len(train))
	}
	// Golden-section search on log10(v) ∈ [-4, -1.5] — within an order of
	// magnitude or two of physically plausible channel speeds, so a
	// degenerate "routing is free" boundary solution cannot win.
	const phi = 0.6180339887498949
	lo, hi := -4.0, -1.5
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := meanErr(x1), meanErr(x2)
	for i := 0; i < 48; i++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = meanErr(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = meanErr(x2)
		}
	}
	out := p.Clone()
	out.QubitSpeed = pow10((lo + hi) / 2)
	return out, nil
}

func pow10(x float64) float64 { return math.Pow(10, x) }
