package leqa

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ResultRecord is the flat, stable on-disk form of one sweep cell — the
// schema the JSON and CSV emitters share, designed so repeated experiment
// runs can be diffed against stored baselines. Latencies round-trip
// bit-exactly (floats render with strconv 'g'/-1 precision in CSV and
// encoding/json defaults in JSON).
type ResultRecord struct {
	Circuit      string  `json:"circuit"`
	CircuitIndex int     `json:"circuitIndex"`
	ParamsIndex  int     `json:"paramsIndex"`
	GridWidth    int     `json:"gridWidth"`
	GridHeight   int     `json:"gridHeight"`
	ChannelCap   int     `json:"channelCapacity"`
	QubitSpeed   float64 `json:"qubitSpeed"`
	TMove        float64 `json:"tMove"`
	// The result columns are always present — even at zero — so baseline
	// diffs never see structural churn when a metric crosses zero; only
	// Error is elided when the cell succeeded. All zero when Error is set.
	Qubits             int     `json:"qubits"`
	Operations         int     `json:"operations"`
	EstimatedLatencyUs float64 `json:"estimatedLatencyUs"` // D (Eq. 1), µs
	LCNOTAvgUs         float64 `json:"lcnotAvgUs"`
	DUncongUs          float64 `json:"dUncongUs"`
	AvgZoneArea        float64 `json:"avgZoneArea"`
	ZoneSide           int     `json:"zoneSide"`
	CriticalCNOTs      int     `json:"criticalCNOTs"`
	CriticalOneQubit   int     `json:"criticalOneQubit"`
	Error              string  `json:"error,omitempty"`
	// TraceID correlates a row with its originating request (leqad sets it
	// on error rows so a failed cell points at its /debug/requests trace).
	// JSON-only: the CSV schema is a committed-baseline format and omits it.
	TraceID string `json:"traceId,omitempty"`
}

// Record flattens the cell into the emitter schema.
func (c GridCell) Record() ResultRecord {
	rec := ResultRecord{
		Circuit:      c.Name,
		CircuitIndex: c.CircuitIndex,
		ParamsIndex:  c.ParamsIndex,
		GridWidth:    c.Params.Grid.Width,
		GridHeight:   c.Params.Grid.Height,
		ChannelCap:   c.Params.ChannelCapacity,
		QubitSpeed:   c.Params.QubitSpeed,
		TMove:        c.Params.TMove,
	}
	if c.Err != nil {
		rec.Error = c.Err.Error()
		return rec
	}
	r := c.Result
	rec.Qubits = r.Qubits
	rec.Operations = r.Operations
	rec.EstimatedLatencyUs = r.EstimatedLatency
	rec.LCNOTAvgUs = r.LCNOTAvg
	rec.DUncongUs = r.DUncong
	rec.AvgZoneArea = r.AvgZoneArea
	rec.ZoneSide = r.ZoneSide
	rec.CriticalCNOTs = r.CriticalCNOTs
	rec.CriticalOneQubit = r.CriticalOneQubit
	return rec
}

// WriteResultsJSON renders sweep cells as an indented JSON array in input
// order — one record per (circuit, parameter-set) cell.
func WriteResultsJSON(w io.Writer, cells []GridCell) error {
	recs := make([]ResultRecord, len(cells))
	for i, c := range cells {
		recs[i] = c.Record()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// csvHeader lists the CSV columns in emission order.
var csvHeader = []string{
	"circuit", "circuit_index", "params_index",
	"grid_width", "grid_height", "channel_capacity", "qubit_speed", "t_move",
	"qubits", "operations",
	"estimated_latency_us", "lcnot_avg_us", "d_uncong_us",
	"avg_zone_area", "zone_side", "critical_cnots", "critical_one_qubit",
	"error",
}

// WriteResultsCSV renders sweep cells as CSV with a header row, in input
// order. Floats use the shortest exact representation so stored baselines
// diff cleanly.
func WriteResultsCSV(w io.Writer, cells []GridCell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	d := strconv.Itoa
	for _, c := range cells {
		rec := c.Record()
		row := []string{
			rec.Circuit, d(rec.CircuitIndex), d(rec.ParamsIndex),
			d(rec.GridWidth), d(rec.GridHeight), d(rec.ChannelCap), f(rec.QubitSpeed), f(rec.TMove),
			d(rec.Qubits), d(rec.Operations),
			f(rec.EstimatedLatencyUs), f(rec.LCNOTAvgUs), f(rec.DUncongUs),
			f(rec.AvgZoneArea), d(rec.ZoneSide), d(rec.CriticalCNOTs), d(rec.CriticalOneQubit),
			rec.Error,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("leqa: writing CSV: %w", err)
	}
	return nil
}
