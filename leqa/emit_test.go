package leqa_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/leqa"
)

// emitFixtureCells builds a two-cell fixture — one success with awkward
// floats, one error row — entirely by hand so the emitter tests need no
// estimator run.
func emitFixtureCells() []leqa.GridCell {
	p := leqa.DefaultParams()
	p.Grid = leqa.Grid{Width: 13, Height: 17}
	p.ChannelCapacity = 3
	p.QubitSpeed = 0.00125
	ok := leqa.GridCell{
		CircuitIndex: 0,
		ParamsIndex:  0,
		Name:         "fixture",
		Params:       p,
		Result: &leqa.EstimateResult{
			EstimatedLatency: 123456.78125,            // exactly representable
			LCNOTAvg:         1.0 / 3.0,               // repeating binary fraction
			DUncong:          math.Nextafter(2000, 0), // one ulp off a round number
			AvgZoneArea:      42.5,
			ZoneSide:         7,
			CriticalCNOTs:    11,
			CriticalOneQubit: 29,
			Qubits:           9,
			Operations:       1234,
		},
	}
	bad := leqa.GridCell{
		CircuitIndex: 1,
		ParamsIndex:  0,
		Name:         "broken",
		Params:       p,
		Err:          errors.New("leqa: circuit \"broken\" contains non-FT gates; run Decompose first"),
	}
	return []leqa.GridCell{ok, bad}
}

func TestWriteResultsCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := leqa.WriteResultsCSV(&buf, emitFixtureCells()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`circuit,circuit_index,params_index,grid_width,grid_height,channel_capacity,qubit_speed,t_move,qubits,operations,estimated_latency_us,lcnot_avg_us,d_uncong_us,avg_zone_area,zone_side,critical_cnots,critical_one_qubit,error`,
		`fixture,0,0,13,17,3,0.00125,100,9,1234,123456.78125,0.3333333333333333,1999.9999999999998,42.5,7,11,29,`,
		`broken,1,0,13,17,3,0.00125,100,0,0,0,0,0,0,0,0,0,"leqa: circuit ""broken"" contains non-FT gates; run Decompose first"`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("CSV output drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteResultsCSVRoundTrip(t *testing.T) {
	cells := emitFixtureCells()
	var buf bytes.Buffer
	if err := leqa.WriteResultsCSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want header + 2", len(rows))
	}
	// The success row's floats must parse back bitwise identical — the
	// property baseline diffing depends on.
	rec := cells[0].Record()
	checks := []struct {
		col  int
		want float64
	}{
		{6, rec.QubitSpeed},
		{7, rec.TMove},
		{10, rec.EstimatedLatencyUs},
		{11, rec.LCNOTAvgUs},
		{12, rec.DUncongUs},
		{13, rec.AvgZoneArea},
	}
	for _, c := range checks {
		got, err := strconv.ParseFloat(rows[1][c.col], 64)
		if err != nil {
			t.Fatalf("column %d (%q): %v", c.col, rows[1][c.col], err)
		}
		if math.Float64bits(got) != math.Float64bits(c.want) {
			t.Fatalf("column %d parsed to %x, want bitwise %x", c.col,
				math.Float64bits(got), math.Float64bits(c.want))
		}
	}
	// The error row keeps the message (including embedded quotes) intact.
	if rows[2][17] != cells[1].Err.Error() {
		t.Fatalf("error column = %q, want %q", rows[2][17], cells[1].Err.Error())
	}
	if rows[2][10] != "0" {
		t.Fatalf("error row latency column = %q, want structural 0", rows[2][10])
	}
}

func TestWriteResultsJSONRoundTrip(t *testing.T) {
	cells := emitFixtureCells()
	var buf bytes.Buffer
	if err := leqa.WriteResultsJSON(&buf, cells); err != nil {
		t.Fatal(err)
	}
	var got []leqa.ResultRecord
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := []leqa.ResultRecord{cells[0].Record(), cells[1].Record()}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON round trip drifted:\ngot:  %+v\nwant: %+v", got, want)
	}
	// Error rows must carry the message and elide it on success.
	if want[0].Error != "" || want[1].Error == "" {
		t.Fatalf("error field wiring: %+v", want)
	}
	if !strings.Contains(buf.String(), `"error": "leqa: circuit \"broken\"`) {
		t.Fatalf("serialized error missing:\n%s", buf.String())
	}
	if n := strings.Count(buf.String(), `"error"`); n != 1 {
		t.Fatalf(`found %d "error" keys, want 1 (success records omit it):%s`, n, buf.String())
	}
}
