// Benchmark harness: one testing.B target per table/figure of the LEQA
// paper (DESIGN.md §4 maps each experiment to its target).
//
//	go test -bench=. -benchmem            # quick set
//	go test -bench=Table -benchtime=1x    # exactly one run per benchmark row
//	go test -bench=Full -benchtime=1x     # all 18 rows incl. gf2^256mult
//
// BenchmarkTable2/LEQA/* and /QSPR/* time the two tools per workload (the
// Table 3 runtime columns); the accuracy comparison itself is asserted in
// TestTable2Accuracy below so `go test` alone validates the reproduction.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/benchgen"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/iig"
	"repro/internal/ingest"
	"repro/internal/qcbin"
	"repro/internal/qodg"
	"repro/internal/qspr"
	"repro/internal/stats"
	"repro/internal/zonemodel"
	"repro/leqa"
)

// skipHeavyInShort gates the QSPR-backed benchmarks out of the CI bench
// smoke run (`go test -run '^$' -bench . -benchtime 1x -short`): detailed
// mapping of the large rows takes minutes to hours, which the smoke step
// only needs to prove compiles-and-runs for the estimator-side targets.
func skipHeavyInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("detailed-mapper benchmark skipped in -short mode")
	}
}

// quickSuite is the benchmark subset used by default bench runs; the full
// 18-row suite (incl. the 983k-op gf2^256mult) runs under -bench=Full.
var quickSuite = []string{
	"8bitadder", "gf2^16mult", "hwb15ps", "ham15", "hwb20ps", "mod1048576adder",
}

// ftCache avoids regenerating circuits across benchmark iterations.
var ftCache = map[string]*circuit.Circuit{}

func ftCircuit(tb testing.TB, name string) *circuit.Circuit {
	if c, ok := ftCache[name]; ok {
		return c
	}
	c, err := benchgen.GenerateFT(name)
	if err != nil {
		tb.Fatal(err)
	}
	ftCache[name] = c
	return c
}

// BenchmarkTable2 times LEQA (the estimator) per benchmark — the left half
// of Table 3's runtime columns and the inputs to Table 2.
func BenchmarkTable2(b *testing.B) {
	p := fabric.Default()
	for _, name := range quickSuite {
		c := ftCircuit(b, name)
		b.Run("LEQA/"+sanitize(name), func(b *testing.B) {
			est, err := core.New(p, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("QSPR/"+sanitize(name), func(b *testing.B) {
			skipHeavyInShort(b)
			m, err := qspr.New(p, qspr.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Map(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Full runs both tools over ALL 18 paper benchmarks and
// reports the speedup per row as a custom metric — the full Table 3.
// Use -benchtime=1x; the largest row maps ~1M operations.
func BenchmarkTable3Full(b *testing.B) {
	skipHeavyInShort(b)
	p := fabric.Default()
	for _, name := range benchgen.Names() {
		name := name
		b.Run(sanitize(name), func(b *testing.B) {
			c := ftCircuit(b, name)
			for i := 0; i < b.N; i++ {
				row, err := experiments.RunCircuit(c, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.Speedup, "speedup")
				b.ReportMetric(row.ErrorPct, "err%")
			}
		})
	}
}

// BenchmarkEstimate measures one estimate on a large (400×400) fabric in
// three configurations: the production path with the zone-model memo warm,
// the histogram-collapsed model computed cold every iteration, and the
// pre-refactor O(kmax·a·b) per-cell scan as the baseline the histogram path
// is required to beat (≥2×).
func BenchmarkEstimate(b *testing.B) {
	p := fabric.Default()
	p.Grid = fabric.Grid{Width: 400, Height: 400}
	c := ftCircuit(b, "gf2^64mult")
	est, err := core.New(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// One warm-up estimate yields the model key this workload resolves to.
	res, err := est.Estimate(c)
	if err != nil {
		b.Fatal(err)
	}
	kmax := len(res.ESq) - 1
	key := zonemodel.Key{
		Grid:        p.Grid,
		ZoneSide:    res.ZoneSide,
		Q:           res.Qubits,
		Kmax:        kmax,
		Capacity:    p.ChannelCapacity,
		DUncongBits: math.Float64bits(res.DUncong),
	}

	b.Run("Memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := est.Estimate(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HistogramCold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := zonemodel.Compute(key); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CellScan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			esq := zonemodel.ExpectedSurfacesCellScan(p.Grid, key.ZoneSide, key.Q, kmax)
			if esq[1] < 0 {
				b.Fatal("impossible")
			}
		}
	})
}

// BenchmarkEstimateWarm measures repeated estimates of one circuit — the
// steady-state leqad worker path — with the per-estimate scratch drawn from
// one reusable arena (graph build, weights and longest-path state all
// recycled; allocs/op collapses to the handful of escaping Result fields)
// against the fresh-allocation baseline.
func BenchmarkEstimateWarm(b *testing.B) {
	p := fabric.Default()
	names := []string{"gf2^128mult"}
	if !testing.Short() {
		names = append(names, "gf2^256mult")
	}
	for _, name := range names {
		c := ftCircuit(b, name)
		est, err := core.New(p, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Run("Arena/"+sanitize(name), func(b *testing.B) {
			ar := analysis.NewArena()
			if _, err := est.EstimateArena(c, ar); err != nil {
				b.Fatal(err) // warm the arena outside the timed loop
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateArena(c, ar); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Fresh/"+sanitize(name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLongestPath isolates the critical-path phase of an estimate: the
// serial oracle sweep against the level-partitioned parallel relaxation
// (forced to 4 workers, and at the machine's automatic setting). On a
// single-core host the auto dispatcher stays serial and Parallel4 mostly
// measures coordination overhead; the ≥1.5× target applies at
// GOMAXPROCS ≥ 4.
func BenchmarkLongestPath(b *testing.B) {
	names := []string{"gf2^128mult"}
	if !testing.Short() {
		names = append(names, "gf2^256mult")
	}
	for _, name := range names {
		c := ftCircuit(b, name)
		g, err := qodg.Build(c)
		if err != nil {
			b.Fatal(err)
		}
		w := g.NewWeights(func(gt circuit.Gate) float64 {
			if gt.Type == circuit.CNOT {
				return 1000.5
			}
			return 100.25
		})
		b.Run("Serial/"+sanitize(name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.LongestPathSerial(w); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Parallel4/"+sanitize(name), func(b *testing.B) {
			s := new(qodg.PathScratch)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.LongestPathParallel(w, s, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Auto/"+sanitize(name), func(b *testing.B) {
			s := new(qodg.PathScratch)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.LongestPathInto(w, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLongestPathMulti isolates the multi-weight kernel against its
// per-column serial baseline: K columns relaxed in one adjacency traversal
// (SoA dist/from slabs) versus K separate LongestPathSerial sweeps that each
// stream the graph again. The win is memory-bound — the adjacency and level
// index are read once instead of K times — so it holds on a single core.
func BenchmarkLongestPathMulti(b *testing.B) {
	c := ftCircuit(b, "gf2^128mult")
	g, err := qodg.Build(c)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 6} {
		ws := make([]qodg.Weights, k)
		for col := range ws {
			scale := 1 + float64(col)*0.25
			ws[col] = g.NewWeights(func(gt circuit.Gate) float64 {
				if gt.Type == circuit.CNOT {
					return 1000.5 * scale
				}
				return 100.25 * scale
			})
		}
		b.Run(fmt.Sprintf("Multi/K%d", k), func(b *testing.B) {
			s := new(qodg.PathScratch)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.LongestPathMulti(ws, s); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("PerColumn/K%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, w := range ws {
					if _, err := g.LongestPathSerial(w); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSweep runs the estimator over the quick suite sequentially and
// through the leqa.Runner worker pool — the fleet-of-scenarios path.
func BenchmarkSweep(b *testing.B) {
	p := fabric.Default()
	circuits := make([]*circuit.Circuit, len(quickSuite))
	for i, name := range quickSuite {
		circuits[i] = ftCircuit(b, name)
	}
	b.Run("Sequential", func(b *testing.B) {
		est, err := core.New(p, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			for _, c := range circuits {
				if _, err := est.Estimate(c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Pool", func(b *testing.B) {
		runner, err := leqa.NewRunner(p, core.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			results, err := runner.Run(ctx, circuits)
			if err != nil {
				b.Fatal(err)
			}
			for _, sr := range results {
				if sr.Err != nil {
					b.Fatal(sr.Err)
				}
			}
		}
	})
}

// BenchmarkAnalyze measures the circuit-analysis front end on a
// Shor-scale workload (gf2^128mult, 246k FT operations): the fused
// single-pass CSR build against the pre-refactor two-pass reference
// builders (per-node append slices + sort/dedup for the QODG, per-qubit
// neighbor maps for the IIG), and against the standalone CSR builders as
// the two-scan/no-maps midpoint.
func BenchmarkAnalyze(b *testing.B) {
	c := ftCircuit(b, "gf2^128mult")
	b.Run("FusedCSR", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := analysis.Analyze(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Forced shard gangs regardless of GOMAXPROCS or the auto-dispatch
	// threshold: on a single-core host this is the stitch-overhead bound
	// (the gang serializes, leaving only the sharding bookkeeping), on a
	// multi-core host the speedup claim.
	for _, shards := range []int{2, 4} {
		b.Run(fmt.Sprintf("ShardedCSR%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := analysis.AnalyzeSharded(c, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ShardedArena4", func(b *testing.B) {
		b.ReportAllocs()
		ar := analysis.NewArena()
		for i := 0; i < b.N; i++ {
			if _, err := ar.AnalyzeSharded(c, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("TwoPassCSR", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qodg.Build(c); err != nil {
				b.Fatal(err)
			}
			if _, err := iig.Build(c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("LegacyTwoPass", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := qodg.BuildReference(c); err != nil {
				b.Fatal(err)
			}
			if _, err := iig.BuildReference(c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAnalyzeStream compares the streaming ingestion front end
// (internal/ingest + analysis.AnalyzeStream, the beyond-memory path)
// against the materialized parse+analyze pipeline on rendered .qc
// netlists of two sizes. Each sub-benchmark reports a retained-B metric:
// the live-heap bytes one analysis product pins after GC. The streamed
// path's retained and per-op bytes exclude the materialized []Gate and its
// per-gate operand slices entirely — its extra footprint over the CSR
// analysis product is one read chunk — which is the PR's peak-memory
// claim in measurable form.
func BenchmarkAnalyzeStream(b *testing.B) {
	for _, name := range []string{"gf2^32mult", "gf2^128mult"} {
		c := ftCircuit(b, name)
		var buf bytes.Buffer
		if err := circuit.WriteQC(&buf, c); err != nil {
			b.Fatal(err)
		}
		qc := buf.Bytes()
		b.Run("Materialized/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(qc)))
			for i := 0; i < b.N; i++ {
				parsed, err := circuit.ParseQC(bytes.NewReader(qc), name)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.Analyze(parsed); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(retainedBytes(b, func() (any, error) {
				parsed, err := circuit.ParseQC(bytes.NewReader(qc), name)
				if err != nil {
					return nil, err
				}
				a, err := analysis.Analyze(parsed)
				// The materialized flow holds both the circuit and its
				// analysis (the analysis references the circuit anyway).
				return []any{parsed, a}, err
			}), "retained-B")
		})
		b.Run("Streamed/"+name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(qc)))
			for i := 0; i < b.N; i++ {
				sc := ingest.NewScanner(bytes.NewReader(qc), name, ingest.Options{})
				if _, err := analysis.AnalyzeStream(sc); err != nil {
					b.Fatal(err)
				}
				sc.Close()
			}
			b.StopTimer()
			b.ReportMetric(retainedBytes(b, func() (any, error) {
				sc := ingest.NewScanner(bytes.NewReader(qc), name, ingest.Options{})
				defer sc.Close()
				a, err := analysis.AnalyzeStream(sc)
				return a, err
			}), "retained-B")
		})
		b.Run("StreamedSharded4/"+name, func(b *testing.B) {
			// Forced 4-way sharded second pass over checkpointed spool
			// segments, independent of GOMAXPROCS and the dispatch
			// threshold (see BenchmarkAnalyze/ShardedCSR*).
			saved := analysis.ShardThreshold
			analysis.ShardThreshold = 1
			defer func() { analysis.ShardThreshold = saved }()
			ar := analysis.NewArena()
			ar.MaxShards = 4
			b.ReportAllocs()
			b.SetBytes(int64(len(qc)))
			for i := 0; i < b.N; i++ {
				sc := ingest.NewScanner(bytes.NewReader(qc), name, ingest.Options{})
				if _, err := ar.AnalyzeStream(sc); err != nil {
					b.Fatal(err)
				}
				sc.Close()
			}
		})
	}
}

// BenchmarkIngestBinary compares parse+analyze across the netlist
// containers on gf2^128mult — textual .qc, binary .qcb and gzipped .qcb,
// all through the magic-byte sniffing entry point — then the
// content-addressed store paths on top: a warm store hit (one digest pass
// over the .qcb, no graph build) and a by-reference estimate (no ingest at
// all), against the storeless cold cell that pays ingest+analyze+estimate
// every time. The .qcb acceptance bar is ≥2× over the textual parse.
func BenchmarkIngestBinary(b *testing.B) {
	const name = "gf2^128mult"
	c := ftCircuit(b, name)
	var qcBuf bytes.Buffer
	if err := circuit.WriteQC(&qcBuf, c); err != nil {
		b.Fatal(err)
	}
	var qcbBuf bytes.Buffer
	if err := qcbin.EncodeCircuit(&qcbBuf, c); err != nil {
		b.Fatal(err)
	}
	var gzBuf bytes.Buffer
	zw := gzip.NewWriter(&gzBuf)
	if _, err := zw.Write(qcbBuf.Bytes()); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}

	// Arena-backed analysis for every container, exactly like the runner's
	// pooled workers: the recycled buffers take allocator and GC noise out
	// of the shared build cost, so the containers' parse work — the thing
	// under comparison — dominates each number.
	analyze := func(label string, data []byte) {
		b.Run(label, func(b *testing.B) {
			ar := analysis.NewArena()
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				sc, err := ingest.NewAutoStream(bytes.NewReader(data), name, ingest.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ar.AnalyzeStream(sc); err != nil {
					b.Fatal(err)
				}
				sc.Close()
			}
		})
	}
	analyze("AnalyzeQC", qcBuf.Bytes())
	analyze("AnalyzeQCB", qcbBuf.Bytes())
	analyze("AnalyzeQCBGz", gzBuf.Bytes())

	ctx := context.Background()
	params := []leqa.Params{leqa.DefaultParams()}
	qcbSource := func() []leqa.Source {
		return []leqa.Source{leqa.ReaderSource(name, bytes.NewReader(qcbBuf.Bytes()), leqa.IngestOptions{})}
	}
	gridCell := func(b *testing.B, r *leqa.Runner, src func() []leqa.Source) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cells, err := r.SweepGridSources(ctx, src(), params)
			if err != nil {
				b.Fatal(err)
			}
			if cells[0].Err != nil {
				b.Fatal(cells[0].Err)
			}
		}
	}

	cold, err := leqa.NewRunner(params[0], leqa.EstimateOptions{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("ColdCellQCB", func(b *testing.B) { gridCell(b, cold, qcbSource) })

	warm, err := leqa.NewRunner(params[0], leqa.EstimateOptions{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	st, err := leqa.NewAnalysisStore(leqa.AnalysisStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	warm.SetAnalysisStore(st)
	seed, err := warm.SweepGridSources(ctx, qcbSource(), params)
	if err != nil {
		b.Fatal(err)
	}
	if seed[0].Err != nil {
		b.Fatal(seed[0].Err)
	}
	b.Run("StoreHitCellQCB", func(b *testing.B) { gridCell(b, warm, qcbSource) })

	digest, err := leqa.CircuitDigest(c)
	if err != nil {
		b.Fatal(err)
	}
	a, err := st.Get(digest)
	if err != nil {
		b.Fatal(err)
	}
	byRef := func() []leqa.Source { return []leqa.Source{leqa.AnalysisSource(name, a)} }
	b.Run("ByRefCell", func(b *testing.B) { gridCell(b, warm, byRef) })
}

// retainedBytes measures the live-heap delta pinned by build's result: GC,
// baseline, build, GC, re-measure. Single-shot and approximate (concurrent
// allocator noise moves it by a few KiB), but the []Gate-retention gap it
// exists to show is tens of MiB.
func retainedBytes(b *testing.B, build func() (any, error)) float64 {
	b.Helper()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	v, err := build()
	if err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	runtime.KeepAlive(v)
	if m1.HeapAlloc <= m0.HeapAlloc {
		return 0
	}
	return float64(m1.HeapAlloc - m0.HeapAlloc)
}

// BenchmarkSweepGrid runs the quick suite × 3 parameter sets through the
// cross-product engine — the fabric-sizing batch path — against the naive
// per-cell Estimate loop that rebuilds the graphs for every cell.
func BenchmarkSweepGrid(b *testing.B) {
	circuits := make([]*circuit.Circuit, len(quickSuite))
	for i, name := range quickSuite {
		circuits[i] = ftCircuit(b, name)
	}
	p1 := fabric.Default()
	p2 := fabric.Default()
	p2.Grid = fabric.Grid{Width: 90, Height: 90}
	p3 := fabric.Default()
	p3.ChannelCapacity = 2
	paramSets := []fabric.Params{p1, p2, p3}

	b.Run("Grid", func(b *testing.B) {
		runner, err := leqa.NewRunner(p1, core.Options{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cells, err := runner.SweepGrid(ctx, circuits, paramSets)
			if err != nil {
				b.Fatal(err)
			}
			for _, cell := range cells {
				if cell.Err != nil {
					b.Fatal(cell.Err)
				}
			}
		}
	})
	b.Run("SequentialCells", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range paramSets {
				est, err := core.New(p, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range circuits {
					if _, err := est.Estimate(c); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkSweepGridBatched times the batched estimate phase of one grid
// row — 1 circuit × 6 parameter columns, the §4.2 design-space shape — with
// the analysis and the zone-model memo warmed outside the loop so the
// measurement isolates what PR 9 fuses: per-column EstimateAnalysisArena
// (the BENCH_8 baseline, K weight builds + K critical-path sweeps) against
// one EstimateAnalysisBatch call (one weight scan + one multi-weight
// traversal). MemoCold/MemoWarm time a whole by-ref grid cell without and
// with a result-memo hit; the warm cell skips analyze and estimate
// entirely.
func BenchmarkSweepGridBatched(b *testing.B) {
	c := ftCircuit(b, "gf2^128mult")
	a, err := analysis.Analyze(c)
	if err != nil {
		b.Fatal(err)
	}
	muts := []func(*fabric.Params){
		func(p *fabric.Params) {},
		func(p *fabric.Params) { p.Grid = fabric.Grid{Width: 90, Height: 90} },
		func(p *fabric.Params) { p.ChannelCapacity = 2 },
		func(p *fabric.Params) { p.QubitSpeed = 0.002 },
		func(p *fabric.Params) { p.TMove = 150 },
		func(p *fabric.Params) { p.DCNOT = 6000 },
	}
	paramSets := make([]fabric.Params, len(muts))
	ests := make([]*core.Estimator, len(muts))
	for j, mut := range muts {
		p := fabric.Default()
		mut(&p)
		paramSets[j] = p
		if ests[j], err = core.New(p, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if _, err := ests[j].EstimateAnalysisArena(a, nil); err != nil {
			b.Fatal(err) // warm the zone-model memo for every column
		}
	}

	b.Run("Batched", func(b *testing.B) {
		ar := analysis.NewArena()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, errs := core.EstimateAnalysisBatch(ests, a, ar)
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("PerColumn", func(b *testing.B) {
		ar := analysis.NewArena()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, est := range ests {
				if _, err := est.EstimateAnalysisArena(a, ar); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	digest, err := leqa.CircuitDigest(c)
	if err != nil {
		b.Fatal(err)
	}
	src := leqa.AnalysisSource(c.Name, a)
	src.Digest = digest
	runGrid := func(b *testing.B, r *leqa.Runner) {
		cells, err := r.SweepGridSources(context.Background(), []leqa.Source{src}, paramSets)
		if err != nil {
			b.Fatal(err)
		}
		for _, cell := range cells {
			if cell.Err != nil {
				b.Fatal(cell.Err)
			}
		}
	}
	b.Run("MemoCold", func(b *testing.B) {
		r, err := leqa.NewRunner(fabric.Default(), core.Options{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		memo := leqa.NewResultMemo(0)
		r.SetResultMemo(memo)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			memo.Purge() // every iteration recomputes all six columns
			b.StartTimer()
			runGrid(b, r)
		}
	})
	b.Run("MemoWarm", func(b *testing.B) {
		r, err := leqa.NewRunner(fabric.Default(), core.Options{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		r.SetResultMemo(leqa.NewResultMemo(0))
		runGrid(b, r) // fill the memo outside the timed loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runGrid(b, r)
		}
	})
}

// BenchmarkFigure5QueueModel times the M/M/1 evaluation (Eq. 8–11) — the
// Figure 5 model on its own.
func BenchmarkFigure5QueueModel(b *testing.B) {
	p := fabric.Default()
	est, err := core.New(p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	c := ftCircuit(b, "gf2^16mult")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTruncation compares the estimator with the paper's 20-term
// truncation against the exact all-Q evaluation (the Eq. 4 runtime claim).
func BenchmarkTruncation(b *testing.B) {
	p := fabric.Default()
	c := ftCircuit(b, "mod1048576adder")
	for _, cfg := range []struct {
		name  string
		trunc int
	}{{"20terms", 0}, {"exact", -1}} {
		b.Run(cfg.name, func(b *testing.B) {
			est, err := core.New(p, core.Options{Truncation: cfg.trunc})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingLEQA measures LEQA runtime vs operation count on the gf2
// family — the §4.2 claim that LEQA scales ~linearly.
func BenchmarkScalingLEQA(b *testing.B) {
	p := fabric.Default()
	for _, n := range []int{16, 32, 64, 128} {
		name := fmt.Sprintf("gf2^%dmult", n)
		b.Run(sanitize(name), func(b *testing.B) {
			c := ftCircuit(b, name)
			est, err := core.New(p, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Estimate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingQSPR is the matching sweep for the detailed mapper (the
// §4.2 superlinear-scaling side).
func BenchmarkScalingQSPR(b *testing.B) {
	skipHeavyInShort(b)
	p := fabric.Default()
	for _, n := range []int{16, 32, 64, 128} {
		name := fmt.Sprintf("gf2^%dmult", n)
		b.Run(sanitize(name), func(b *testing.B) {
			c := ftCircuit(b, name)
			m, err := qspr.New(p, qspr.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.Map(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerate times the benchmark generators themselves.
func BenchmarkGenerate(b *testing.B) {
	for _, name := range []string{"gf2^64mult", "hwb50ps", "mod1048576adder"} {
		b.Run(sanitize(name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchgen.GenerateFT(name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTable2Accuracy is the headline reproduction check: on the quick
// suite, LEQA's estimate must land within 35% of this repository's QSPR on
// every benchmark and within 12% on average (the paper reports 2.11% avg /
// 8.29% max against its own mapper; our from-scratch mapper tracks the
// estimator less tightly on the high-degree gf2 family — see
// EXPERIMENTS.md).
func TestTable2Accuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run skipped in -short mode")
	}
	p := fabric.Default()
	var errs []float64
	for _, name := range quickSuite {
		row, err := experiments.RunCircuit(ftCircuit(t, name), p)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-17s actual=%.3fs est=%.3fs err=%.2f%%",
			name, row.ActualSec, row.EstimateSec, row.ErrorPct)
		if row.ErrorPct > 35 {
			t.Errorf("%s: error %.2f%% exceeds 35%%", name, row.ErrorPct)
		}
		errs = append(errs, row.ErrorPct)
	}
	if mean := stats.Mean(errs); mean > 12 {
		t.Errorf("mean error %.2f%% exceeds 12%%", mean)
	}
}

// measureSpeedup times reps back-to-back runs of both tools on one circuit
// and returns the aggregate QSPR/LEQA runtime ratio. Aggregating over many
// repetitions keeps the ratio stable for circuits whose single-run times are
// within timer noise; one warm-up run per tool excludes cold-cache effects
// (including the first zone-model computation, which is memoized thereafter).
func measureSpeedup(tb testing.TB, c *circuit.Circuit, p fabric.Params, reps int) float64 {
	mapper, err := qspr.New(p, qspr.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	est, err := core.New(p, core.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := mapper.Map(c); err != nil {
		tb.Fatal(err)
	}
	if _, err := est.Estimate(c); err != nil {
		tb.Fatal(err)
	}
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := mapper.Map(c); err != nil {
			tb.Fatal(err)
		}
	}
	qsprDur := time.Since(t0)
	t1 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := est.Estimate(c); err != nil {
			tb.Fatal(err)
		}
	}
	leqaDur := time.Since(t1)
	return float64(qsprDur) / float64(leqaDur)
}

// TestSpeedupGrowsWithSize checks Table 3's qualitative claim: the
// LEQA-over-QSPR speedup increases with operation count, because QSPR's
// mapping time grows superlinearly while LEQA stays near-linear. The
// comparison runs between a mid-size and a large benchmark — with the zone
// model memoized, LEQA no longer pays a fabric-sized constant per estimate,
// so the sub-millisecond smallest circuits sit in a regime dominated by
// QSPR's own fixed overheads and timer noise.
func TestSpeedupGrowsWithSize(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run skipped in -short mode")
	}
	p := fabric.Default()
	small := measureSpeedup(t, ftCircuit(t, "gf2^16mult"), p, 20)
	big := measureSpeedup(t, ftCircuit(t, "gf2^100mult"), p, 2)
	t.Logf("speedup: gf2^16mult %.2fx -> gf2^100mult %.2fx", small, big)
	if big <= small {
		t.Errorf("speedup did not grow: %.2fx (3.9k ops) vs %.2fx (150k ops)", small, big)
	}
}

// TestExperimentReportsRender smoke-tests every table/figure renderer so a
// formatting regression cannot hide until someone runs the binary.
func TestExperimentReportsRender(t *testing.T) {
	p := fabric.Default()
	var sb strings.Builder
	experiments.Table1(&sb, p)
	experiments.Figure1(&sb)
	if err := experiments.Figure2(&sb); err != nil {
		t.Fatal(err)
	}
	experiments.Figure3(&sb, p)
	experiments.Figure4(&sb, p)
	experiments.Figure5(&sb, p, 850)
	for _, want := range []string{"d_CNOT", "ULB", "ham3", "P=", "q=", "uncongested"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered reports missing %q", want)
		}
	}
	rows := []experiments.Row{
		{Name: "8bitadder", Qubits: 24, Operations: 822, ActualSec: 1.6,
			EstimateSec: 1.66, ErrorPct: 3.1, QSPRRuntime: 1e6, LEQARuntime: 1e5, Speedup: 10},
		{Name: "gf2^16mult", Qubits: 48, Operations: 3885, ActualSec: 4.4,
			EstimateSec: 4.5, ErrorPct: 1.4, QSPRRuntime: 3e6, LEQARuntime: 2e5, Speedup: 15},
	}
	var tb strings.Builder
	experiments.Table2(&tb, rows)
	experiments.Table3(&tb, rows)
	if err := experiments.Extrapolation(&tb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "Shor-1024") {
		t.Error("extrapolation report missing Shor-1024 line")
	}
}

// TestAblationsRender smoke-tests the ablation reports end to end on tiny
// inputs.
func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	p := fabric.Default()
	checks := []func(io.Writer) error{
		func(w io.Writer) error { return experiments.AblationTruncation(w, "8bitadder", p) },
		func(w io.Writer) error { return experiments.AblationCongestion(w, []string{"8bitadder"}, p) },
		func(w io.Writer) error { return experiments.AblationPlacement(w, []string{"8bitadder"}, p) },
		func(w io.Writer) error { return experiments.AblationMeeting(w, []string{"8bitadder"}, p) },
		func(w io.Writer) error { return experiments.AblationTSPBound(w, 7) },
		func(w io.Writer) error { return experiments.AblationChannelCapacity(w, "8bitadder", p) },
		func(w io.Writer) error { return experiments.FabricSizeSweep(w, "8bitadder", p, []int{4, 10, 60}) },
	}
	for i, f := range checks {
		var sb strings.Builder
		if err := f(&sb); err != nil {
			t.Errorf("ablation %d: %v", i, err)
		}
		if sb.Len() == 0 {
			t.Errorf("ablation %d rendered nothing", i)
		}
	}
}

func sanitize(name string) string {
	return strings.NewReplacer("^", "_", "/", "_").Replace(name)
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
