// Coding-style comparison: the paper's §1 motivates LEQA as a tool that
// lets algorithm developers "learn efficient ways of coding their quantum
// algorithms by quickly comparing the latency of different software coding
// techniques." This example compares two functionally equivalent codings of
// the same GF(2^8) multiplication — the count-matched Mastrovito netlist
// and the fully expanded exact netlist — plus a serialization-heavy variant,
// and shows how the estimated latency separates them.
//
//	go run ./examples/codingstyle
package main

import (
	"fmt"
	"log"

	"repro/leqa"
)

func main() {
	p := leqa.DefaultParams()

	variants := []struct {
		label string
		gen   func() (*leqa.Circuit, error)
	}{
		{"mastrovito (count-matched)", func() (*leqa.Circuit, error) {
			return leqa.Generate("gf2^8mult")
		}},
		{"expanded-exact (per-term Toffolis)", func() (*leqa.Circuit, error) {
			return generateExact()
		}},
		{"column-serial (worst-case ordering)", generateColumnSerial},
	}

	fmt.Printf("%-38s %8s %8s %12s %10s\n", "coding", "qubits", "FT ops", "estimate(s)", "critical")
	for _, v := range variants {
		raw, err := v.gen()
		if err != nil {
			log.Fatal(err)
		}
		ft, err := leqa.Decompose(raw)
		if err != nil {
			log.Fatal(err)
		}
		res, err := leqa.Estimate(ft, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %8d %8d %12.4f %10d\n",
			v.label, ft.NumQubits(), ft.NumGates(), res.EstimatedLatency/1e6,
			res.CriticalCNOTs+res.CriticalOneQubit)
	}
	fmt.Println("\nsame function, different netlists: operation count alone does not")
	fmt.Println("predict latency — dependency structure (critical path) dominates,")
	fmt.Println("which is exactly what Eq. 1 captures.")
}

// generateExact returns the functionally exact GF(2^8) multiplier, which
// expands each partial product through the field-polynomial reduction.
func generateExact() (*leqa.Circuit, error) {
	return leqa.GenerateExactGF2Mult(8)
}

// generateColumnSerial builds a deliberately serialized coding: all 64
// partial products target the SAME accumulator qubit chain before being
// fanned out — legal reversible logic, same gate count order, much longer
// dependency chain.
func generateColumnSerial() (*leqa.Circuit, error) {
	const n = 8
	c, err := leqa.Generate("gf2^8mult")
	if err != nil {
		return nil, err
	}
	// Rebuild with every Toffoli targeting c0, followed by CNOT fan-out.
	out := c.Clone()
	out.Name = "gf2^8mult_serial"
	out.Gates = out.Gates[:0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Append(leqa.Gate{
				Type:     toffoli(),
				Controls: []int{i, n + j},
				Targets:  []int{2 * n},
			})
			if dst := 2*n + (i+j)%n; dst != 2*n {
				out.Append(leqa.Gate{
					Type:     cnot(),
					Controls: []int{2 * n},
					Targets:  []int{dst},
				})
			}
		}
	}
	return out, nil
}

func toffoli() leqa.GateType { return byName("TOF") }
func cnot() leqa.GateType    { return byName("CNOT") }

func byName(s string) leqa.GateType {
	for gt := leqa.GateType(1); gt < 20; gt++ {
		if gt.String() == s {
			return gt
		}
	}
	return 0
}
