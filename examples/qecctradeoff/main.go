// QECC trade-off: the paper's motivating loop for error-correction
// designers — gate delays depend on the chosen quantum error correction
// code, the required code strength depends on the program latency, and the
// latency depends on the delays. LEQA makes iterating this loop cheap.
//
// This example evaluates one workload under three synthetic QECC operating
// points (level-1 Steane from Table 1, a hypothetical level-2 concatenation
// with ~10x delays, and a lighter surface-code-like point with cheap
// Cliffords and expensive T gates) and reports the latency each yields.
//
//	go run ./examples/qecctradeoff
package main

import (
	"fmt"
	"log"

	"repro/leqa"
)

// codePoint is one QECC operating point: multipliers over the Table 1
// baseline delays.
type codePoint struct {
	name        string
	cliffordMul float64 // H, S, X, Y, Z, CNOT scale
	tMul        float64 // T, T† scale (non-transversal / distilled)
	moveMul     float64 // T_move scale (bigger code blocks move slower)
}

func main() {
	points := []codePoint{
		{"steane-L1 (Table 1)", 1, 1, 1},
		{"steane-L2 (10x ops)", 10, 10, 10},
		{"surface-like (cheap Cliffords, costly T)", 0.3, 4, 0.5},
	}
	workload := "hwb20ps"
	c, err := leqa.GenerateFT(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d qubits, %d FT ops\n\n", workload, c.NumQubits(), c.NumGates())
	fmt.Printf("%-42s %14s %16s\n", "QECC operating point", "latency(s)", "T-share of path")

	base := leqa.DefaultParams()
	for _, pt := range points {
		p := base.Clone()
		for gt, d := range p.GateDelay {
			if gt == leqa.GateType(0) {
				continue
			}
			switch gt.String() {
			case "T", "T*":
				p.GateDelay[gt] = d * pt.tMul
			default:
				p.GateDelay[gt] = d * pt.cliffordMul
			}
		}
		p.DCNOT *= pt.cliffordMul
		p.TMove *= pt.moveMul

		res, err := leqa.Estimate(c, p)
		if err != nil {
			log.Fatal(err)
		}
		// How much of the critical path is T/T† execution time?
		tCount := res.CriticalPath.CountByType[tType()] + res.CriticalPath.CountByType[tdgType()]
		tDelay, _ := p.DelayOf(tType())
		tShare := float64(tCount) * tDelay / res.EstimatedLatency * 100
		fmt.Printf("%-42s %14.3f %15.1f%%\n", pt.name, res.EstimatedLatency/1e6, tShare)
	}
	fmt.Println("\nthe latency feeds back into how much error correction the program")
	fmt.Println("needs — the inter-dependency the paper highlights in §1. With LEQA")
	fmt.Println("each iteration costs milliseconds instead of a full mapping run.")
}

func tType() leqa.GateType   { return parseType("T") }
func tdgType() leqa.GateType { return parseType("T*") }

func parseType(s string) leqa.GateType {
	for gt := leqa.GateType(1); gt < 20; gt++ {
		if gt.String() == s {
			return gt
		}
	}
	return 0
}
