// Quickstart: estimate the latency of a quantum circuit on the default
// tiled quantum architecture, and compare against the detailed mapper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/leqa"
)

func main() {
	// Generate the paper's running example: the ham3 Hamming coder of
	// Fig. 2, lowered to the fault-tolerant gate set (19 operations).
	c, err := leqa.GenerateFT("ham3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d qubits, %d FT operations (%s)\n",
		c.Name, c.NumQubits(), c.NumGates(), c.CountsString())

	// Table 1 physical parameters: Steane [[7,1,3]] ion-trap delays on a
	// 60x60 ULB fabric.
	p := leqa.DefaultParams()

	// LEQA: the fast estimate (Algorithm 1).
	est, err := leqa.Estimate(c, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LEQA estimate:   %.4f s\n", est.EstimatedLatency/1e6)
	fmt.Printf("  L_CNOT^avg = %.1f µs, d_uncong = %.1f µs, B = %.2f ULBs\n",
		est.LCNOTAvg, est.DUncong, est.AvgZoneArea)
	fmt.Printf("  critical path: %d CNOTs + %d one-qubit ops\n",
		est.CriticalCNOTs, est.CriticalOneQubit)

	// The detailed scheduler/placer/router: the "actual" latency.
	act, err := leqa.MapActual(c, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("actual (mapped): %.4f s  (%d qubit moves)\n",
		act.Latency/1e6, act.Moves)

	// One-line accuracy/speed comparison (Table 2 row).
	cmp, err := leqa.Compare(c, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimation error: %.2f%%   speedup: %.1fx (%v vs %v)\n",
		cmp.ErrorPct, cmp.Speedup, cmp.EstRuntime, cmp.MapRuntime)
}
