// Fabric sizing: the use case the paper calls out explicitly — "[the fabric
// size] can be changed to find the optimal size for the fabric which results
// in the minimum delay." Because LEQA runs in milliseconds, a designer can
// sweep fabric dimensions interactively instead of waiting for a full
// mapping per size. The whole study is one SweepGrid batch: the circuit is
// analyzed once (fused QODG+IIG pass) and every fabric size estimates
// against that shared analysis concurrently.
//
//	go run ./examples/fabricsizing
package main

import (
	"context"
	"fmt"
	"log"

	"repro/leqa"
)

func main() {
	// A mid-size workload: the GF(2^16) multiplier (48 qubits, 3885 FT
	// operations after decomposition).
	c, err := leqa.GenerateFT("gf2^16mult")
	if err != nil {
		log.Fatal(err)
	}
	base := leqa.DefaultParams()

	fmt.Printf("sweeping fabric size for %s (%d qubits, %d ops)\n\n",
		c.Name, c.NumQubits(), c.NumGates())
	fmt.Printf("%10s %14s %14s %12s\n", "fabric", "estimate(s)", "L_CNOT(µs)", "zone side")

	sizes := []int{8, 10, 12, 16, 20, 30, 40, 60, 90, 120}
	fits := make([]bool, len(sizes))
	var paramSets []leqa.Params
	for i, size := range sizes {
		grid := leqa.Grid{Width: size, Height: size}
		if grid.Area() < c.NumQubits() {
			continue
		}
		p := base.Clone()
		p.Grid = grid
		fits[i] = true
		paramSets = append(paramSets, p)
	}

	// One batch over the cross product {circuit} × sizes.
	cells, err := leqa.SweepGrid(context.Background(), []*leqa.Circuit{c}, paramSets)
	if err != nil {
		log.Fatal(err)
	}

	next := 0
	bestSize, bestLatency := 0, 0.0
	for i, size := range sizes {
		if !fits[i] {
			fmt.Printf("%7dx%-2d %14s\n", size, size, "too small")
			continue
		}
		cell := cells[next]
		next++
		if cell.Err != nil {
			log.Fatal(cell.Err)
		}
		res := cell.Result
		fmt.Printf("%7dx%-2d %14.4f %14.1f %12d\n",
			size, size, res.EstimatedLatency/1e6, res.LCNOTAvg, res.ZoneSide)
		if bestSize == 0 || res.EstimatedLatency < bestLatency {
			bestSize, bestLatency = size, res.EstimatedLatency
		}
	}
	fmt.Printf("\nminimum-latency fabric in sweep: %dx%d (%.4f s)\n",
		bestSize, bestSize, bestLatency/1e6)
	fmt.Println("\nsmall fabrics lose to congestion (zones overlap, Eq. 8 queueing);")
	fmt.Println("oversized fabrics waste no latency in this model because presence")
	fmt.Println("zones — not the fabric span — set the travel distances.")
}
