// Fabric sizing: the use case the paper calls out explicitly — "[the fabric
// size] can be changed to find the optimal size for the fabric which results
// in the minimum delay." Because LEQA runs in milliseconds, a designer can
// sweep fabric dimensions interactively instead of waiting for a full
// mapping per size.
//
//	go run ./examples/fabricsizing
package main

import (
	"fmt"
	"log"

	"repro/leqa"
)

func main() {
	// A mid-size workload: the GF(2^16) multiplier (48 qubits, 3885 FT
	// operations after decomposition).
	c, err := leqa.GenerateFT("gf2^16mult")
	if err != nil {
		log.Fatal(err)
	}
	base := leqa.DefaultParams()

	fmt.Printf("sweeping fabric size for %s (%d qubits, %d ops)\n\n",
		c.Name, c.NumQubits(), c.NumGates())
	fmt.Printf("%10s %14s %14s %12s\n", "fabric", "estimate(s)", "L_CNOT(µs)", "zone side")

	bestSize, bestLatency := 0, 0.0
	for _, size := range []int{8, 10, 12, 16, 20, 30, 40, 60, 90, 120} {
		p := base.Clone()
		p.Grid = leqa.Grid{Width: size, Height: size}
		if p.Grid.Area() < c.NumQubits() {
			fmt.Printf("%7dx%-2d %14s\n", size, size, "too small")
			continue
		}
		res, err := leqa.Estimate(c, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7dx%-2d %14.4f %14.1f %12d\n",
			size, size, res.EstimatedLatency/1e6, res.LCNOTAvg, res.ZoneSide)
		if bestSize == 0 || res.EstimatedLatency < bestLatency {
			bestSize, bestLatency = size, res.EstimatedLatency
		}
	}
	fmt.Printf("\nminimum-latency fabric in sweep: %dx%d (%.4f s)\n",
		bestSize, bestSize, bestLatency/1e6)
	fmt.Println("\nsmall fabrics lose to congestion (zones overlap, Eq. 8 queueing);")
	fmt.Println("oversized fabrics waste no latency in this model because presence")
	fmt.Println("zones — not the fabric span — set the travel distances.")
}
